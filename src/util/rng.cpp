#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace mldist::util {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t index) {
  std::uint64_t state = master;
  (void)splitmix64_next(state);
  state ^= (index + 1) * 0x9e3779b97f4a7c15ULL;
  return splitmix64_next(state);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // All-zero state is a fixed point of xoshiro; splitmix cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint32_t Xoshiro256::next_u32() {
  return static_cast<std::uint32_t>(next_u64() >> 32);
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift with rejection in the biased strip.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t x = next_u64();
    const auto m = static_cast<__uint128_t>(x) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Xoshiro256::next_gaussian() {
  // Box-Muller; u clamped away from 0 so log() is finite.
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  const double v = next_double();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * 3.14159265358979323846 * v);
}

void Xoshiro256::fill_bytes(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t w = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(w >> (8 * b));
  }
  if (i < n) {
    const std::uint64_t w = next_u64();
    for (int b = 0; i < n; ++b) out[i++] = static_cast<std::uint8_t>(w >> (8 * b));
  }
}

std::vector<std::uint8_t> Xoshiro256::bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  fill_bytes(v.data(), n);
  return v;
}

Xoshiro256 Xoshiro256::fork() { return Xoshiro256(next_u64()); }

}  // namespace mldist::util
