// Fault-injection configuration (ISSUE 2: fault-tolerant training &
// inference).
//
// One declarative record describes every fault the harness can inject:
// oracle-level faults (bit-flipped answers, dropped queries that must be
// re-issued, latency spikes) consumed by core::FaultyOracle, and a
// training-level fault (a weight poisoned to NaN at the end of a chosen
// epoch) consumed by MLDistinguisher's retry loop to force the
// divergence → rollback → retry path deterministically.
//
// Determinism contract: oracle fault decisions are drawn from a stream
// forked off the caller's per-chunk RNG (see FaultyOracle::query), so the
// fault schedule is a pure function of the collection seed — the same seed
// yields the same faults for any worker count.
#pragma once

#include <cstdint>
#include <string>

namespace mldist::util {

struct FaultConfig {
  // --- oracle faults (FaultyOracle) --------------------------------------
  double bit_flip_prob = 0.0;       ///< per query: flip one bit of one answer
  double drop_prob = 0.0;           ///< per query: answer lost, re-issued
  double latency_spike_prob = 0.0;  ///< per query: stall before answering
  std::uint32_t latency_spike_us = 200;  ///< stall duration when it fires

  // --- training faults (MLDistinguisher retry loop) -----------------------
  /// Poison one weight to NaN at the end of this epoch (0 = off).  The next
  /// epoch's forward pass then produces a non-finite loss, which the
  /// numeric-health guard turns into a TrainingDiverged condition.
  int poison_weight_epoch = 0;
  /// The poison fires on attempts 1..poison_max_attempts; later retries run
  /// clean (so recovery can be observed) — set it >= the retry budget to
  /// force degradation to the linear baseline.
  int poison_max_attempts = 1;

  bool any_oracle_faults() const {
    return bit_flip_prob > 0.0 || drop_prob > 0.0 || latency_spike_prob > 0.0;
  }
  bool enabled() const {
    return any_oracle_faults() || poison_weight_epoch > 0;
  }

  /// The config as one JSON object (for bench artifacts).
  std::string to_json() const;
};

}  // namespace mldist::util
