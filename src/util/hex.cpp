#include "util/hex.hpp"

#include <stdexcept>

namespace mldist::util {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<int> nibbles;
  nibbles.reserve(hex.size());
  for (char c : hex) {
    if (c == ' ' || c == '\t' || c == '\n') continue;
    nibbles.push_back(nibble(c));
  }
  if (nibbles.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd number of hex digits");
  }
  std::vector<std::uint8_t> out(nibbles.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibbles[2 * i] << 4) | nibbles[2 * i + 1]);
  }
  return out;
}

}  // namespace mldist::util
