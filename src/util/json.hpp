// Minimal JSON emission for telemetry records and bench artifacts.
//
// The repo only ever *writes* JSON (one object per report / bench run, fed
// to external plotting or tracking scripts), so this is a builder, not a
// parser.  Nesting is by composition: build the child with its own
// JsonBuilder and attach it with raw().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mldist::util {

class JsonBuilder {
 public:
  JsonBuilder& field(const std::string& key, double value);
  JsonBuilder& field(const std::string& key, std::uint64_t value);
  JsonBuilder& field(const std::string& key, int value);
  JsonBuilder& field(const std::string& key, bool value);
  JsonBuilder& field(const std::string& key, const std::string& value);
  JsonBuilder& field(const std::string& key, const char* value);
  /// Attach pre-rendered JSON (an object or array) under `key`.
  JsonBuilder& raw(const std::string& key, const std::string& json);
  /// Splice another builder's fields into this object, preserving order.
  /// The caller guarantees key uniqueness across the two (duplicate keys
  /// are legal JSON but ambiguous to consumers).
  JsonBuilder& merge(const JsonBuilder& other);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return "{" + body_ + "}"; }

  /// Render a list of pre-rendered JSON values as an array.
  static std::string array(const std::vector<std::string>& items);
  /// Quote and escape a string as a JSON value.
  static std::string quote(const std::string& s);

 private:
  void key(const std::string& k);

  std::string body_;
};

/// Outcome of write_json_file: converts to true on success, otherwise
/// `error` describes what failed (paths included) for logs and reports.
struct WriteResult {
  std::string error;
  explicit operator bool() const { return error.empty(); }
};

/// Write `json` to `path` (one line, trailing newline), creating parent
/// directories.  Crash-safe: the payload goes to "<path>.tmp", is fsync'd,
/// and is atomically renamed over `path` (the tmp+rename pattern of
/// core::CheckpointManager) with the parent directory fsync'd after the
/// rename — a crash or power loss mid-write leaves the previous artifact,
/// never a torn or vanished results/BENCH_*.json.
WriteResult write_json_file(const std::string& path, const std::string& json);

/// Append one line to a JSONL file (results/history.jsonl, the campaign
/// WAL), creating parent directories.  Multi-process safe: the file is
/// opened with O_APPEND and the record (line + '\n') is issued as a single
/// write(2), so concurrent workers appending to the same history never
/// interleave partial lines — every line in the file is one complete
/// record from one writer.  The tmp+rename dance would clobber earlier
/// lines, which is exactly wrong for an append-only history.
WriteResult append_jsonl(const std::string& path, const std::string& line);

/// fsync `path`'s contents to stable storage.  Returns false (with errno
/// text in `error` when non-null) on failure.  Durable-write helper shared
/// by write_json_file and core::CheckpointManager.
bool fsync_file(const std::string& path, std::string* error = nullptr);

/// fsync the directory containing `path`, making a rename into it durable.
bool fsync_parent_dir(const std::string& path, std::string* error = nullptr);

/// Minimal well-formedness validator for the JSON this repo emits (bench
/// artifacts, telemetry records, trace files): objects, arrays, strings
/// with escapes, numbers, true/false/null, nesting depth <= 256.  Returns
/// false and fills `error` (with a byte offset) on the first violation.
/// This is a checker, not a parser — the repo still never builds a DOM.
bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace mldist::util
