// A minimal persistent thread pool with a parallel_for primitive.
//
// The NN hot path (matrix multiplication) uses it to split output rows
// across cores; everything else in the repo is single-threaded and
// deterministic.  parallel_for partitions [0, n) into one contiguous chunk
// per worker, so results are bitwise independent of the worker count as
// long as chunks write disjoint memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mldist::util {

class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(begin, end) over a partition of [0, n); blocks until all
  /// chunks finish.  The calling thread executes one chunk itself.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;       // one slot per worker
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace mldist::util
