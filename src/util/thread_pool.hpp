// A minimal persistent thread pool with a parallel_for primitive.
//
// The data engine (core/dataset) and the NN hot paths (matmul, batched
// evaluate/predict) use it to split independent work across cores.
// parallel_for partitions [0, n) into one contiguous chunk per worker, so
// results are bitwise independent of the worker count as long as chunks
// write disjoint memory.
//
// parallel_for is reentrancy-safe: a call made from inside a parallel_for
// body (e.g. a matmul running under the batch-level evaluate loop) executes
// the whole range inline on the current thread instead of re-entering the
// pool.  The outermost caller therefore owns the fan-out and nested levels
// degrade to serial, which both avoids deadlock and keeps the work grid —
// hence the results — identical.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mldist::util {

class ThreadPool {
 public:
  /// `threads` = 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(begin, end) over a partition of [0, n); blocks until all
  /// chunks finish.  The calling thread executes one chunk itself.
  ///
  /// Exception safety: a throw from any chunk no longer escapes its worker
  /// thread (which would std::terminate the process).  The generation is
  /// drained, then the exception — the calling thread's own, else the first
  /// one a worker captured — is rethrown here.  Other chunks are NOT
  /// cancelled (they run to completion), and the pool remains usable.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool (lazily constructed, sized to the hardware).
  static ThreadPool& global();

  /// True while the current thread is executing a parallel_for chunk (of any
  /// pool).  Nested parallel_for calls detect this and run inline.
  static bool in_parallel_region();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;       // one slot per worker
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;      // first task-body exception this generation
};

/// Run body over [0, n) with the fan-out implied by `threads`: 0 = the
/// process-wide pool, 1 = inline serial, otherwise a dedicated pool of that
/// many workers.  Inside an enclosing parallel region the body always runs
/// inline (see the reentrancy contract above).  Returns the worker count
/// actually used, for telemetry.
std::size_t parallel_for_threads(
    std::size_t threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace mldist::util
