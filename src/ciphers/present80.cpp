#include "ciphers/present80.hpp"

#include <cassert>

namespace mldist::ciphers {

namespace {
constexpr std::uint8_t kSbox[16] = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
                                    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2};
constexpr std::uint8_t kSboxInv[16] = {0x5, 0xE, 0xF, 0x8, 0xC, 0x1, 0x2, 0xD,
                                       0xB, 0x4, 0x6, 0x3, 0x0, 0x7, 0x9, 0xA};

// pLayer: bit i moves to bit (i mod 4)*16 + i/4 (bit 63 fixed).
constexpr int p_of(int i) { return (i % 4) * 16 + i / 4; }
}  // namespace

std::uint64_t Present80::sbox_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int n = 0; n < 16; ++n) {
    out |= static_cast<std::uint64_t>(kSbox[(s >> (4 * n)) & 0xF]) << (4 * n);
  }
  return out;
}

std::uint64_t Present80::sbox_layer_inverse(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int n = 0; n < 16; ++n) {
    out |= static_cast<std::uint64_t>(kSboxInv[(s >> (4 * n)) & 0xF])
           << (4 * n);
  }
  return out;
}

std::uint64_t Present80::p_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    out |= ((s >> i) & 1u) << p_of(i);
  }
  return out;
}

std::uint64_t Present80::p_layer_inverse(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    out |= ((s >> p_of(i)) & 1u) << i;
  }
  return out;
}

Present80::Present80(const std::array<std::uint8_t, 10>& key) {
  // 80-bit key register split as hi = bits 79..16, lo = bits 15..0.
  std::uint64_t hi = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | key[static_cast<std::size_t>(i)];
  }
  std::uint16_t lo = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(key[8]) << 8) | key[9]);

  rk_.resize(kPresentRounds + 1);
  for (int round = 1; round <= kPresentRounds + 1; ++round) {
    rk_[static_cast<std::size_t>(round - 1)] = hi;
    if (round > kPresentRounds) break;
    // Rotate the 80-bit register left by 61 (= right by 19).
    const std::uint64_t old_hi = hi;
    const std::uint16_t old_lo = lo;
    hi = (old_hi >> 19) | (static_cast<std::uint64_t>(old_lo) << 45) |
         (old_hi << 61);
    lo = static_cast<std::uint16_t>(old_hi >> 3);
    // S-box on the top nibble (register bits 79..76 = hi bits 63..60).
    hi = (hi & 0x0FFFFFFFFFFFFFFFull) |
         (static_cast<std::uint64_t>(kSbox[hi >> 60]) << 60);
    // XOR the round counter into register bits 19..15.
    hi ^= static_cast<std::uint64_t>(round >> 1);
    lo ^= static_cast<std::uint16_t>((round & 1) << 15);
  }
}

std::uint64_t Present80::encrypt(std::uint64_t p, int rounds) const {
  assert(rounds >= 0 && rounds <= kPresentRounds);
  for (int r = 0; r < rounds; ++r) {
    p ^= rk_[static_cast<std::size_t>(r)];
    p = sbox_layer(p);
    p = p_layer(p);
  }
  return p ^ rk_[static_cast<std::size_t>(rounds)];
}

std::uint64_t Present80::decrypt(std::uint64_t c, int rounds) const {
  assert(rounds >= 0 && rounds <= kPresentRounds);
  c ^= rk_[static_cast<std::size_t>(rounds)];
  for (int r = rounds - 1; r >= 0; --r) {
    c = p_layer_inverse(c);
    c = sbox_layer_inverse(c);
    c ^= rk_[static_cast<std::size_t>(r)];
  }
  return c;
}

}  // namespace mldist::ciphers
