// SIMECK-32/64 (Yang, Zhu, Suder, Aagaard, Gong — CHES 2015): a SIMON-like
// Feistel round, f(x) = (x & x <<< 5) ^ (x <<< 1), with a Speck-like key
// schedule that reuses the round function on the key registers. Together
// with SIMON it is the related-key distinguisher target of arXiv 2201.03767.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::ciphers {

inline constexpr int kSimeckRounds = 32;

/// A 32-bit SIMECK block as two 16-bit words (x = high, y = low).
struct SimeckBlock {
  std::uint16_t x = 0;
  std::uint16_t y = 0;

  friend bool operator==(const SimeckBlock&, const SimeckBlock&) = default;

  std::uint32_t as_u32() const {
    return (static_cast<std::uint32_t>(x) << 16) | y;
  }
  static SimeckBlock from_u32(std::uint32_t v) {
    return {static_cast<std::uint16_t>(v >> 16), static_cast<std::uint16_t>(v)};
  }
};

class Simeck3264 {
 public:
  /// Key words in printing order, matching Simon3264/Speck3264: the CHES
  /// test-vector key "1918 1110 0908 0100" is {0x1918, 0x1110, 0x0908,
  /// 0x0100} and key[3] seeds round 0.
  explicit Simeck3264(const std::array<std::uint16_t, 4>& key);

  SimeckBlock encrypt(SimeckBlock p, int rounds = kSimeckRounds) const;
  SimeckBlock decrypt(SimeckBlock c, int rounds = kSimeckRounds) const;

  const std::vector<std::uint16_t>& round_keys() const { return rk_; }

  static SimeckBlock round(SimeckBlock b, std::uint16_t k);
  static SimeckBlock round_inverse(SimeckBlock b, std::uint16_t k);

 private:
  std::vector<std::uint16_t> rk_;
};

}  // namespace mldist::ciphers
