// Chaskey (Mouha et al., SAC 2014): a permutation-based MAC for 32-bit
// microcontrollers. The core is an ARX permutation on four 32-bit words
// (8 rounds in the original proposal, 12 in Chaskey-12); messages are
// absorbed in 128-bit blocks and the tag is the (truncated) final state.
// Distinguished by neural networks in arXiv 2204.06341.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mldist::ciphers {

inline constexpr int kChaskeyRounds = 8;

/// Permutation state / key: four 32-bit words v0..v3 (little-endian bytes).
using ChaskeyState = std::array<std::uint32_t, 4>;

/// One forward round of the Chaskey permutation.
ChaskeyState chaskey_round(ChaskeyState v);
/// Apply `rounds` forward rounds in place.
void chaskey_permute(ChaskeyState& v, int rounds = kChaskeyRounds);

/// Multiply by x in GF(2^128) with polynomial x^128 + x^7 + x^2 + x + 1,
/// treating v3 as the most significant word — the subkey derivation of the
/// Chaskey spec (K1 = 2K, K2 = 4K = 2*K1).
ChaskeyState chaskey_times_two(const ChaskeyState& in);

class ChaskeyMac {
 public:
  explicit ChaskeyMac(const ChaskeyState& key, int rounds = kChaskeyRounds);

  /// Full 128-bit tag over `len` message bytes (callers truncate for
  /// shorter tags, per the spec).
  std::array<std::uint8_t, 16> mac(const std::uint8_t* msg,
                                   std::size_t len) const;

  const ChaskeyState& k1() const { return k1_; }
  const ChaskeyState& k2() const { return k2_; }

 private:
  ChaskeyState key_;
  ChaskeyState k1_;
  ChaskeyState k2_;
  int rounds_;
};

}  // namespace mldist::ciphers
