// GIFT-64 (Banik et al., CHES 2017): the bit-permutation SPN whose S-box
// drives the paper's §2.1 Markov/non-Markov toy example, and the Markov
// cipher suggested for future work in §6.
//
//   block 64 bits, key 128 bits, 28 rounds
//   S-box GS = 1A4C6F392DB7508E (nibble i maps to kGiftSbox[i])
//
// Bit numbering is LSB-first: state bit 0 is the least significant bit of
// the 64-bit word, S-box i acts on bits 4i..4i+3.
#pragma once

#include <array>
#include <cstdint>

namespace mldist::ciphers {

inline constexpr int kGift64Rounds = 28;

/// The GIFT 4-bit S-box, exactly the table printed in the paper (§2.1).
inline constexpr std::array<std::uint8_t, 16> kGiftSbox = {
    0x1, 0xa, 0x4, 0xc, 0x6, 0xf, 0x3, 0x9,
    0x2, 0xd, 0xb, 0x7, 0x5, 0x0, 0x8, 0xe};

/// Inverse S-box.
std::uint8_t gift_sbox_inverse(std::uint8_t y);

/// GIFT-64 bit permutation: bit i of the state moves to position
/// gift64_bit_permutation(i).
int gift64_bit_permutation(int i);

class Gift64 {
 public:
  /// 128-bit key as eight 16-bit words k7..k0 (key[0] = k7 ... key[7] = k0),
  /// matching the spec's K = k7 || k6 || ... || k0.
  explicit Gift64(const std::array<std::uint16_t, 8>& key);

  /// Encrypt through the first `rounds` rounds (default: full 28).
  std::uint64_t encrypt(std::uint64_t p, int rounds = kGift64Rounds) const;
  /// Inverse of encrypt(p, rounds).
  std::uint64_t decrypt(std::uint64_t c, int rounds = kGift64Rounds) const;

  /// Round key material already expanded into its 64-bit XOR mask (round
  /// key bits and round constants placed at their state positions).
  const std::array<std::uint64_t, kGift64Rounds>& round_masks() const {
    return masks_;
  }

  /// The unkeyed round function: S-box layer then bit permutation.
  static std::uint64_t sub_perm(std::uint64_t s);
  static std::uint64_t sub_perm_inverse(std::uint64_t s);

 private:
  std::array<std::uint64_t, kGift64Rounds> masks_{};
};

}  // namespace mldist::ciphers
