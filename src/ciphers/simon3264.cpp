#include "ciphers/simon3264.hpp"

#include <cassert>

namespace mldist::ciphers {

namespace {
constexpr std::uint16_t rotl16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v << r) | (v >> (16 - r)));
}
constexpr std::uint16_t rotr16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v >> r) | (v << (16 - r)));
}

constexpr std::uint16_t simon_f(std::uint16_t x) {
  return static_cast<std::uint16_t>((rotl16(x, 1) & rotl16(x, 8)) ^
                                    rotl16(x, 2));
}

// The z0 constant sequence of the SIMON paper, indexed as z0[i % 62]; the
// string is the sequence exactly as printed (leftmost character = (z0)_0).
constexpr char kZ0[] =
    "11111010001001010110000111001101111101000100101011000011100110";
}  // namespace

SimonBlock Simon3264::round(SimonBlock b, std::uint16_t k) {
  const std::uint16_t nx = static_cast<std::uint16_t>(b.y ^ simon_f(b.x) ^ k);
  b.y = b.x;
  b.x = nx;
  return b;
}

SimonBlock Simon3264::round_inverse(SimonBlock b, std::uint16_t k) {
  const std::uint16_t ny = static_cast<std::uint16_t>(b.x ^ simon_f(b.y) ^ k);
  b.x = b.y;
  b.y = ny;
  return b;
}

Simon3264::Simon3264(const std::array<std::uint16_t, 4>& key) {
  rk_.resize(kSimonRounds);
  // key[3] is k[0], key[2] is k[1], key[1] is k[2], key[0] is k[3];
  // k[i+4] = c ^ (z0)_i ^ k[i] ^ (I ^ S^-1)(S^-3 k[i+3] ^ k[i+1]),
  // c = 2^16 - 4.
  rk_[0] = key[3];
  rk_[1] = key[2];
  rk_[2] = key[1];
  rk_[3] = key[0];
  for (int i = 0; i + 4 < kSimonRounds; ++i) {
    std::uint16_t tmp =
        static_cast<std::uint16_t>(rotr16(rk_[i + 3], 3) ^ rk_[i + 1]);
    tmp ^= rotr16(tmp, 1);
    rk_[i + 4] = static_cast<std::uint16_t>(
        0xfffcu ^ (kZ0[i % 62] - '0') ^ rk_[i] ^ tmp);
  }
}

SimonBlock Simon3264::encrypt(SimonBlock p, int rounds) const {
  assert(rounds >= 0 && rounds <= kSimonRounds);
  for (int i = 0; i < rounds; ++i) p = round(p, rk_[i]);
  return p;
}

SimonBlock Simon3264::decrypt(SimonBlock c, int rounds) const {
  assert(rounds >= 0 && rounds <= kSimonRounds);
  for (int i = rounds - 1; i >= 0; --i) c = round_inverse(c, rk_[i]);
  return c;
}

}  // namespace mldist::ciphers
