#include "ciphers/gimli_hash.hpp"

#include <cassert>
#include <stdexcept>

namespace mldist::ciphers {

namespace {

/// XOR one byte into the state (byte index interpreted little-endian within
/// the 32-bit words, matching gimli_state_to_bytes).
void xor_state_byte(GimliState& s, std::size_t i, std::uint8_t v) {
  s[i / 4] ^= static_cast<std::uint32_t>(v) << (8 * (i % 4));
}

std::uint8_t state_byte(const GimliState& s, std::size_t i) {
  return static_cast<std::uint8_t>(s[i / 4] >> (8 * (i % 4)));
}

}  // namespace

GimliHash::GimliHash(int rounds) : rounds_(rounds) {
  if (rounds < 1 || rounds > kGimliRounds) {
    throw std::invalid_argument("GimliHash: rounds must be in [1, 24]");
  }
}

void GimliHash::permute() { gimli_reduced(state_, rounds_); }

void GimliHash::absorb(std::span<const std::uint8_t> data) {
  assert(!finished_);
  for (std::uint8_t b : data) {
    xor_state_byte(state_, pos_, b);
    if (++pos_ == kGimliHashRate) {
      permute();
      pos_ = 0;
    }
  }
}

std::vector<std::uint8_t> GimliHash::digest() {
  assert(!finished_);
  finished_ = true;
  // Pad: 0x01 after the message inside the rate, 0x01 into the last state
  // byte, then one permutation.
  xor_state_byte(state_, pos_, 0x01);
  xor_state_byte(state_, kGimliStateBytes - 1, 0x01);
  permute();

  std::vector<std::uint8_t> out(kGimliHashDigestBytes);
  for (std::size_t i = 0; i < kGimliHashRate; ++i) out[i] = state_byte(state_, i);
  permute();
  for (std::size_t i = 0; i < kGimliHashRate; ++i) {
    out[kGimliHashRate + i] = state_byte(state_, i);
  }
  return out;
}

std::vector<std::uint8_t> gimli_hash(std::span<const std::uint8_t> msg,
                                     int rounds) {
  GimliHash h(rounds);
  h.absorb(msg);
  return h.digest();
}

}  // namespace mldist::ciphers
