// Salsa20 core (Bernstein): one of the keyless-round non-Markov primitives
// named in §2.1 of the reproduced paper; used by the extension experiments.
//
// The core permutes a 4x4 matrix of 32-bit words with `rounds` rounds
// (column rounds alternate with row rounds; the real cipher uses 20) and
// adds the input words to the output ("core" feed-forward), which is what
// makes the function non-invertible and the construction keyless inside.
#pragma once

#include <array>
#include <cstdint>

namespace mldist::ciphers {

using SalsaState = std::array<std::uint32_t, 16>;

inline constexpr int kSalsaRounds = 20;

/// The quarterround function (y0..y3) -> (z0..z3) from the Salsa20 spec.
void salsa_quarterround(std::uint32_t& y0, std::uint32_t& y1,
                        std::uint32_t& y2, std::uint32_t& y3);

/// Apply `rounds` Salsa20 rounds in place (odd indices are row rounds).
void salsa20_rounds(SalsaState& s, int rounds);

/// The Salsa20 core: rounds + feed-forward addition of the input.
SalsaState salsa20_core(const SalsaState& in, int rounds = kSalsaRounds);

}  // namespace mldist::ciphers
