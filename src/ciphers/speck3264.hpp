// SPECK-32/64 (Beaulieu et al., 2013): the ARX block cipher Gohr attacked at
// CRYPTO'19 and the Markov-cipher baseline of the reproduced paper's §2.3.
//
//   block 32 bits (two 16-bit words), key 64 bits (four 16-bit words),
//   22 rounds; round function x = (x >>> 7 + y) ^ k, y = (y <<< 2) ^ x.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::ciphers {

inline constexpr int kSpeckRounds = 22;

/// A 32-bit SPECK block as its two 16-bit words (x = high, y = low).
struct SpeckBlock {
  std::uint16_t x = 0;
  std::uint16_t y = 0;

  friend bool operator==(const SpeckBlock&, const SpeckBlock&) = default;

  std::uint32_t as_u32() const {
    return (static_cast<std::uint32_t>(x) << 16) | y;
  }
  static SpeckBlock from_u32(std::uint32_t v) {
    return {static_cast<std::uint16_t>(v >> 16), static_cast<std::uint16_t>(v)};
  }
};

class Speck3264 {
 public:
  /// Key words in the paper's printing order: key[0] is the word loaded
  /// last by the schedule (the test-vector key "1918 1110 0908 0100" is
  /// passed as {0x1918, 0x1110, 0x0908, 0x0100}).
  explicit Speck3264(const std::array<std::uint16_t, 4>& key);

  /// Encrypt through the first `rounds` rounds (default: full 22).
  SpeckBlock encrypt(SpeckBlock p, int rounds = kSpeckRounds) const;
  /// Inverse of encrypt(p, rounds).
  SpeckBlock decrypt(SpeckBlock c, int rounds = kSpeckRounds) const;

  const std::vector<std::uint16_t>& round_keys() const { return rk_; }

  /// One keyed SPECK round (exposed for the analysis code).
  static SpeckBlock round(SpeckBlock b, std::uint16_t k);
  static SpeckBlock round_inverse(SpeckBlock b, std::uint16_t k);

 private:
  std::vector<std::uint16_t> rk_;
};

}  // namespace mldist::ciphers
