#include "ciphers/gift_toy.hpp"

#include "ciphers/gift64.hpp"

namespace mldist::ciphers {

std::uint8_t toy_sbox_layer(std::uint8_t s) {
  return toy_pack(kGiftSbox[s & 0xf], kGiftSbox[s >> 4]);
}

std::uint8_t toy_permute_bits(std::uint8_t s) {
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint8_t>(((s >> i) & 1) << kToyBitPerm[i]);
  }
  return out;
}

std::uint8_t toy_round(std::uint8_t s) { return toy_permute_bits(toy_sbox_layer(s)); }

ToyTrace toy_trace(std::uint8_t y1) {
  ToyTrace t;
  t.w1 = toy_sbox_layer(y1);
  t.y2 = toy_permute_bits(t.w1);
  t.w2 = toy_sbox_layer(t.y2);
  return t;
}

std::uint8_t toy_cipher(std::uint8_t y1) { return toy_trace(y1).w2; }

}  // namespace mldist::ciphers
