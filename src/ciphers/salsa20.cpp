#include "ciphers/salsa20.hpp"

#include <bit>

namespace mldist::ciphers {

void salsa_quarterround(std::uint32_t& y0, std::uint32_t& y1,
                        std::uint32_t& y2, std::uint32_t& y3) {
  y1 ^= std::rotl(y0 + y3, 7);
  y2 ^= std::rotl(y1 + y0, 9);
  y3 ^= std::rotl(y2 + y1, 13);
  y0 ^= std::rotl(y3 + y2, 18);
}

namespace {

void columnround(SalsaState& s) {
  salsa_quarterround(s[0], s[4], s[8], s[12]);
  salsa_quarterround(s[5], s[9], s[13], s[1]);
  salsa_quarterround(s[10], s[14], s[2], s[6]);
  salsa_quarterround(s[15], s[3], s[7], s[11]);
}

void rowround(SalsaState& s) {
  salsa_quarterround(s[0], s[1], s[2], s[3]);
  salsa_quarterround(s[5], s[6], s[7], s[4]);
  salsa_quarterround(s[10], s[11], s[8], s[9]);
  salsa_quarterround(s[15], s[12], s[13], s[14]);
}

}  // namespace

void salsa20_rounds(SalsaState& s, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    if (r % 2 == 0) {
      columnround(s);
    } else {
      rowround(s);
    }
  }
}

SalsaState salsa20_core(const SalsaState& in, int rounds) {
  SalsaState s = in;
  salsa20_rounds(s, rounds);
  for (int i = 0; i < 16; ++i) s[i] += in[i];
  return s;
}

}  // namespace mldist::ciphers
