// GIFT-128 (Banik et al., CHES 2017): the wider GIFT family member the
// paper's Fig. 1 caption names; implemented for the §6 future-scope
// experiments alongside GIFT-64.
//
//   block 128 bits, key 128 bits, 40 rounds; same S-box as GIFT-64.
//
// The state is kept as two 64-bit words: lo holds bits 0..63, hi bits
// 64..127 (LSB-first numbering, S-box i on bits 4i..4i+3).
#pragma once

#include <array>
#include <cstdint>

namespace mldist::ciphers {

inline constexpr int kGift128Rounds = 40;

struct Gift128Block {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Gift128Block&, const Gift128Block&) = default;
};

/// GIFT-128 bit permutation: bit i moves to gift128_bit_permutation(i).
int gift128_bit_permutation(int i);

class Gift128 {
 public:
  /// 128-bit key as eight 16-bit words k7..k0 (key[0] = k7 ... key[7] = k0).
  explicit Gift128(const std::array<std::uint16_t, 8>& key);

  Gift128Block encrypt(Gift128Block p, int rounds = kGift128Rounds) const;
  Gift128Block decrypt(Gift128Block c, int rounds = kGift128Rounds) const;

  /// The unkeyed round function: S-box layer then bit permutation.
  static Gift128Block sub_perm(Gift128Block s);
  static Gift128Block sub_perm_inverse(Gift128Block s);

  const std::array<Gift128Block, kGift128Rounds>& round_masks() const {
    return masks_;
  }

 private:
  std::array<Gift128Block, kGift128Rounds> masks_{};
};

}  // namespace mldist::ciphers
