// Gimli permutation (Bernstein et al., CHES 2017).
//
// The 384-bit state is a 3x4 matrix of 32-bit words; Algorithm 1 of the
// reproduced paper iterates a column-local SP-box, with a Small-Swap and a
// round-constant addition when round % 4 == 0 and a Big-Swap when
// round % 4 == 2, counting the round number DOWN from 24 to 1.
//
// Round-reduced variants matter for the distinguisher experiments: the paper
// analyses "8-round Gimli", meaning the LAST 8 rounds of the countdown
// (rounds 8,7,...,1), which is what you get by truncating the loop.  We
// expose a general round window [hi, lo] so both conventions ("first n" and
// "last n") are available and testable.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mldist::ciphers {

/// 3x4 matrix of 32-bit words; row-major: state[4*row + col].
using GimliState = std::array<std::uint32_t, 12>;

inline constexpr int kGimliRounds = 24;
inline constexpr int kGimliStateBytes = 48;

/// One SP-box application to column j of the state (rotations, shifts and
/// the nonlinear T-function of Algorithm 1, lines 3-8).
void gimli_spbox_column(GimliState& s, int j);

/// Apply rounds r = hi down to lo inclusive (Algorithm 1 semantics: swap /
/// constant when r % 4 == 0, Big-Swap when r % 4 == 2).  Preconditions:
/// 1 <= lo <= hi <= 24.
void gimli_rounds(GimliState& s, int hi, int lo);

/// The full 24-round permutation.
void gimli_permute(GimliState& s);

/// Last `n` rounds of the countdown (rounds n..1) — the reduced-round
/// convention used by the paper's experiments.
void gimli_reduced(GimliState& s, int n);

/// Inverse of gimli_rounds(s, hi, lo); used for structural testing.
void gimli_rounds_inverse(GimliState& s, int hi, int lo);

/// Inverse of the full permutation.
void gimli_permute_inverse(GimliState& s);

/// Batched round window: apply rounds hi..lo to n independent states stored
/// column-sliced (SoA): soa[w * n + s] is word w of state s.  Routes through
/// the kernels dispatch (reference / blocked / avx2); every implementation
/// is bitwise identical to looping gimli_rounds over the states.
void gimli_rounds_batch(std::uint32_t* soa, std::size_t n, int hi, int lo);

/// Convenience AoS overload for test vectors and callers holding GimliState
/// values: packs to SoA, permutes, unpacks.  Bitwise identical to the scalar
/// loop; the SoA entry point is the one the data pipeline uses.
void gimli_rounds_batch(GimliState* states, std::size_t n, int hi, int lo);

/// Batched variant of gimli_reduced: last n_rounds rounds of the countdown
/// on every state; n_rounds == 0 is the identity.
void gimli_reduced_batch(std::uint32_t* soa, std::size_t n, int n_rounds);

/// Serialise the state to 48 little-endian bytes (word s[i] at offset 4*i).
void gimli_state_to_bytes(const GimliState& s, std::uint8_t out[48]);

/// Load the state from 48 little-endian bytes.
GimliState gimli_state_from_bytes(const std::uint8_t in[48]);

}  // namespace mldist::ciphers
