// PRESENT-80 (Bogdanov et al., CHES 2007; ISO/IEC 29192-2): a 64-bit SPN
// with a single 4-bit S-box, a bit permutation, and an 80-bit key.
// Distinguished by neural networks in arXiv 2204.06341.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::ciphers {

inline constexpr int kPresentRounds = 31;

class Present80 {
 public:
  /// Key bytes big-endian as printed in the paper's vectors: the all-zero
  /// key is {0,...,0}; key[0] holds register bits 79..72.
  explicit Present80(const std::array<std::uint8_t, 10>& key);

  /// Encrypt `rounds` SPN rounds (addRoundKey, sBox, pLayer) followed by
  /// the post-whitening key; rounds == 31 matches the official vectors.
  std::uint64_t encrypt(std::uint64_t p, int rounds = kPresentRounds) const;
  /// Inverse of encrypt(c, rounds).
  std::uint64_t decrypt(std::uint64_t c, int rounds = kPresentRounds) const;

  const std::vector<std::uint64_t>& round_keys() const { return rk_; }

  static std::uint64_t sbox_layer(std::uint64_t s);
  static std::uint64_t sbox_layer_inverse(std::uint64_t s);
  static std::uint64_t p_layer(std::uint64_t s);
  static std::uint64_t p_layer_inverse(std::uint64_t s);

 private:
  std::vector<std::uint64_t> rk_;  // 32 round keys (31 rounds + whitening).
};

}  // namespace mldist::ciphers
