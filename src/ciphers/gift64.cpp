#include "ciphers/gift64.hpp"

#include <cassert>

namespace mldist::ciphers {

namespace {

constexpr std::array<std::uint8_t, 16> make_inverse_sbox() {
  std::array<std::uint8_t, 16> inv{};
  for (int i = 0; i < 16; ++i) inv[kGiftSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 16> kGiftSboxInv = make_inverse_sbox();

constexpr std::uint16_t rotr16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v >> r) | (v << (16 - r)));
}

/// Round-constant bit positions: constants land on bits 3, 7, 11, 15, 19, 23
/// and the top bit 63 is always set (GIFT spec).
constexpr std::array<int, 6> kConstBits = {3, 7, 11, 15, 19, 23};

}  // namespace

std::uint8_t gift_sbox_inverse(std::uint8_t y) { return kGiftSboxInv[y & 0xf]; }

int gift64_bit_permutation(int i) {
  assert(i >= 0 && i < 64);
  // P64(i) = 4*floor(i/16) + 16*((3*floor((i mod 16)/4) + (i mod 4)) mod 4)
  //          + (i mod 4)            (GIFT paper, Table "P64")
  const int q = i / 16;
  const int r = (i % 16) / 4;
  const int b = i % 4;
  return 4 * q + 16 * ((3 * r + b) % 4) + b;
}

std::uint64_t Gift64::sub_perm(std::uint64_t s) {
  std::uint64_t t = 0;
  for (int n = 0; n < 16; ++n) {
    t |= static_cast<std::uint64_t>(kGiftSbox[(s >> (4 * n)) & 0xf]) << (4 * n);
  }
  std::uint64_t p = 0;
  for (int i = 0; i < 64; ++i) {
    p |= ((t >> i) & 1ULL) << gift64_bit_permutation(i);
  }
  return p;
}

std::uint64_t Gift64::sub_perm_inverse(std::uint64_t s) {
  std::uint64_t t = 0;
  for (int i = 0; i < 64; ++i) {
    t |= ((s >> gift64_bit_permutation(i)) & 1ULL) << i;
  }
  std::uint64_t p = 0;
  for (int n = 0; n < 16; ++n) {
    p |= static_cast<std::uint64_t>(kGiftSboxInv[(t >> (4 * n)) & 0xf]) << (4 * n);
  }
  return p;
}

Gift64::Gift64(const std::array<std::uint16_t, 8>& key) {
  // Key state words k7..k0; key[j] holds k_{7-j}.
  std::array<std::uint16_t, 8> k{};
  for (int j = 0; j < 8; ++j) k[7 - j] = key[j];

  std::uint8_t c = 0;  // 6-bit round-constant LFSR
  for (int r = 0; r < kGift64Rounds; ++r) {
    // Round key RK = U || V = k1 || k0; V on bits 4i, U on bits 4i+1.
    const std::uint16_t u = k[1];
    const std::uint16_t v = k[0];
    std::uint64_t mask = 0;
    for (int i = 0; i < 16; ++i) {
      mask |= static_cast<std::uint64_t>((v >> i) & 1) << (4 * i);
      mask |= static_cast<std::uint64_t>((u >> i) & 1) << (4 * i + 1);
    }
    // LFSR: (c5..c0) <- (c4..c0, c5 ^ c4 ^ 1), advanced before use.
    c = static_cast<std::uint8_t>(((c << 1) | (((c >> 5) ^ (c >> 4) ^ 1) & 1)) & 0x3f);
    for (int i = 0; i < 6; ++i) {
      mask |= static_cast<std::uint64_t>((c >> i) & 1) << kConstBits[i];
    }
    mask |= 1ULL << 63;
    masks_[r] = mask;

    // Key state rotation: (k7..k0) <- (k1 >>> 2, k0 >>> 12, k7, ..., k2).
    const std::uint16_t nk7 = rotr16(k[1], 2);
    const std::uint16_t nk6 = rotr16(k[0], 12);
    for (int j = 0; j < 6; ++j) k[j] = k[j + 2];
    k[6] = nk6;
    k[7] = nk7;
  }
}

std::uint64_t Gift64::encrypt(std::uint64_t p, int rounds) const {
  assert(rounds >= 0 && rounds <= kGift64Rounds);
  for (int r = 0; r < rounds; ++r) {
    p = sub_perm(p);
    p ^= masks_[r];
  }
  return p;
}

std::uint64_t Gift64::decrypt(std::uint64_t cblock, int rounds) const {
  assert(rounds >= 0 && rounds <= kGift64Rounds);
  for (int r = rounds - 1; r >= 0; --r) {
    cblock ^= masks_[r];
    cblock = sub_perm_inverse(cblock);
  }
  return cblock;
}

}  // namespace mldist::ciphers
