// Trivium (De Canniere & Preneel, eSTREAM): the second keyless-round
// non-Markov primitive named in §2.1; used by the extension experiments.
//
//   key 80 bits, IV 80 bits, 288-bit state, 4*288 = 1152 initialisation
//   clocks before the first keystream bit.
//
// The initialisation round count is a template for round reduction: the
// distinguisher experiments shorten it and look for structure in the first
// keystream bytes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::ciphers {

inline constexpr int kTriviumInitClocks = 4 * 288;

class Trivium {
 public:
  /// key/iv: 10 bytes each, bit i of the spec being byte i/8 bit (7 - i%8)
  /// (MSB-first within bytes, following the eSTREAM convention).
  Trivium(const std::array<std::uint8_t, 10>& key,
          const std::array<std::uint8_t, 10>& iv,
          int init_clocks = kTriviumInitClocks);

  /// Next keystream bit.
  int next_bit();
  /// Next keystream byte (LSB = first bit, little-endian bit packing).
  std::uint8_t next_byte();
  /// `n` keystream bytes.
  std::vector<std::uint8_t> keystream(std::size_t n);

 private:
  int clock();  // advance one step, returning the output bit

  std::array<std::uint8_t, 288> s_{};  // s_[i] = spec bit s_{i+1}
};

}  // namespace mldist::ciphers
