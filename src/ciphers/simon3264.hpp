// SIMON-32/64 (Beaulieu et al., 2013): the AND-RX Feistel sibling of SPECK
// and, with SIMECK, the related-key distinguisher target of arXiv 2201.03767.
//
//   block 32 bits (two 16-bit words), key 64 bits (four 16-bit words),
//   32 rounds; round function (x, y) -> (y ^ f(x) ^ k, x) with
//   f(x) = (x <<< 1 & x <<< 8) ^ (x <<< 2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::ciphers {

inline constexpr int kSimonRounds = 32;

/// A 32-bit SIMON block as its two 16-bit words (x = high, y = low) — the
/// same packing convention as SpeckBlock.
struct SimonBlock {
  std::uint16_t x = 0;
  std::uint16_t y = 0;

  friend bool operator==(const SimonBlock&, const SimonBlock&) = default;

  std::uint32_t as_u32() const {
    return (static_cast<std::uint32_t>(x) << 16) | y;
  }
  static SimonBlock from_u32(std::uint32_t v) {
    return {static_cast<std::uint16_t>(v >> 16), static_cast<std::uint16_t>(v)};
  }
};

class Simon3264 {
 public:
  /// Key words in the paper's printing order, exactly like Speck3264: the
  /// test-vector key "1918 1110 0908 0100" is passed as {0x1918, 0x1110,
  /// 0x0908, 0x0100} (key[3] is the word used in round 0).
  explicit Simon3264(const std::array<std::uint16_t, 4>& key);

  /// Encrypt through the first `rounds` rounds (default: full 32).
  SimonBlock encrypt(SimonBlock p, int rounds = kSimonRounds) const;
  /// Inverse of encrypt(p, rounds).
  SimonBlock decrypt(SimonBlock c, int rounds = kSimonRounds) const;

  const std::vector<std::uint16_t>& round_keys() const { return rk_; }

  static SimonBlock round(SimonBlock b, std::uint16_t k);
  static SimonBlock round_inverse(SimonBlock b, std::uint16_t k);

 private:
  std::vector<std::uint16_t> rk_;
};

}  // namespace mldist::ciphers
