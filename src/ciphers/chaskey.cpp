#include "ciphers/chaskey.hpp"

#include <cassert>
#include <cstring>

namespace mldist::ciphers {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t v, int r) {
  return (v << r) | (v >> (32 - r));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

ChaskeyState chaskey_round(ChaskeyState v) {
  v[0] += v[1];
  v[1] = rotl32(v[1], 5);
  v[1] ^= v[0];
  v[0] = rotl32(v[0], 16);
  v[2] += v[3];
  v[3] = rotl32(v[3], 8);
  v[3] ^= v[2];
  v[0] += v[3];
  v[3] = rotl32(v[3], 13);
  v[3] ^= v[0];
  v[2] += v[1];
  v[1] = rotl32(v[1], 7);
  v[1] ^= v[2];
  v[2] = rotl32(v[2], 16);
  return v;
}

void chaskey_permute(ChaskeyState& v, int rounds) {
  assert(rounds >= 0);
  for (int i = 0; i < rounds; ++i) v = chaskey_round(v);
}

ChaskeyState chaskey_times_two(const ChaskeyState& in) {
  const std::uint32_t carry = in[3] >> 31 ? 0x87u : 0u;
  ChaskeyState out;
  out[0] = (in[0] << 1) ^ carry;
  out[1] = (in[1] << 1) | (in[0] >> 31);
  out[2] = (in[2] << 1) | (in[1] >> 31);
  out[3] = (in[3] << 1) | (in[2] >> 31);
  return out;
}

ChaskeyMac::ChaskeyMac(const ChaskeyState& key, int rounds)
    : key_(key),
      k1_(chaskey_times_two(key)),
      k2_(chaskey_times_two(chaskey_times_two(key))),
      rounds_(rounds) {}

std::array<std::uint8_t, 16> ChaskeyMac::mac(const std::uint8_t* msg,
                                             std::size_t len) const {
  ChaskeyState v = key_;
  // Absorb all complete blocks except a complete final one.
  while (len > 16) {
    for (int w = 0; w < 4; ++w) {
      v[static_cast<std::size_t>(w)] ^= load_le32(msg + 4 * w);
    }
    chaskey_permute(v, rounds_);
    msg += 16;
    len -= 16;
  }
  // Final block: complete blocks use K1; short or empty blocks are padded
  // with 0x01 0x00.. and use K2.
  const ChaskeyState& last_key = (len == 16) ? k1_ : k2_;
  std::uint8_t block[16] = {0};
  std::memcpy(block, msg, len);
  if (len < 16) block[len] = 0x01;
  for (int w = 0; w < 4; ++w) {
    v[static_cast<std::size_t>(w)] ^=
        load_le32(block + 4 * w) ^ last_key[static_cast<std::size_t>(w)];
  }
  chaskey_permute(v, rounds_);
  std::array<std::uint8_t, 16> tag;
  for (int w = 0; w < 4; ++w) {
    const std::uint32_t word =
        v[static_cast<std::size_t>(w)] ^ last_key[static_cast<std::size_t>(w)];
    tag[static_cast<std::size_t>(4 * w + 0)] =
        static_cast<std::uint8_t>(word);
    tag[static_cast<std::size_t>(4 * w + 1)] =
        static_cast<std::uint8_t>(word >> 8);
    tag[static_cast<std::size_t>(4 * w + 2)] =
        static_cast<std::uint8_t>(word >> 16);
    tag[static_cast<std::size_t>(4 * w + 3)] =
        static_cast<std::uint8_t>(word >> 24);
  }
  return tag;
}

}  // namespace mldist::ciphers
