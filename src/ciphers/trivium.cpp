#include "ciphers/trivium.hpp"

namespace mldist::ciphers {

namespace {
/// Spec bit i (1-based, MSB-first within bytes) of an 80-bit buffer.
int spec_bit(const std::array<std::uint8_t, 10>& buf, int i) {
  return (buf[(i - 1) / 8] >> (7 - (i - 1) % 8)) & 1;
}
}  // namespace

Trivium::Trivium(const std::array<std::uint8_t, 10>& key,
                 const std::array<std::uint8_t, 10>& iv, int init_clocks) {
  for (int i = 1; i <= 80; ++i) s_[i - 1] = static_cast<std::uint8_t>(spec_bit(key, i));
  for (int i = 1; i <= 80; ++i) s_[93 + i - 1] = static_cast<std::uint8_t>(spec_bit(iv, i));
  s_[285] = s_[286] = s_[287] = 1;
  for (int i = 0; i < init_clocks; ++i) (void)clock();
}

int Trivium::clock() {
  // Spec indices are 1-based; s_[k] = s_{k+1}.
  const int t1 = s_[65] ^ s_[92];
  const int t2 = s_[161] ^ s_[176];
  const int t3 = s_[242] ^ s_[287];
  const int z = t1 ^ t2 ^ t3;
  const int n1 = t1 ^ (s_[90] & s_[91]) ^ s_[170];
  const int n2 = t2 ^ (s_[174] & s_[175]) ^ s_[263];
  const int n3 = t3 ^ (s_[285] & s_[286]) ^ s_[68];
  // Shift each register by one, inserting the feedback bit at the front.
  for (int i = 92; i > 0; --i) s_[i] = s_[i - 1];
  s_[0] = static_cast<std::uint8_t>(n3);
  for (int i = 176; i > 93; --i) s_[i] = s_[i - 1];
  s_[93] = static_cast<std::uint8_t>(n1);
  for (int i = 287; i > 177; --i) s_[i] = s_[i - 1];
  s_[177] = static_cast<std::uint8_t>(n2);
  return z;
}

int Trivium::next_bit() { return clock(); }

std::uint8_t Trivium::next_byte() {
  std::uint8_t b = 0;
  for (int i = 0; i < 8; ++i) b |= static_cast<std::uint8_t>(clock() << i);
  return b;
}

std::vector<std::uint8_t> Trivium::keystream(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = next_byte();
  return out;
}

}  // namespace mldist::ciphers
