#include "ciphers/simeck3264.hpp"

#include <cassert>

namespace mldist::ciphers {

namespace {
constexpr std::uint16_t rotl16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v << r) | (v >> (16 - r)));
}

constexpr std::uint16_t simeck_f(std::uint16_t x) {
  return static_cast<std::uint16_t>((x & rotl16(x, 5)) ^ rotl16(x, 1));
}
}  // namespace

SimeckBlock Simeck3264::round(SimeckBlock b, std::uint16_t k) {
  const std::uint16_t nx = static_cast<std::uint16_t>(b.y ^ simeck_f(b.x) ^ k);
  b.y = b.x;
  b.x = nx;
  return b;
}

SimeckBlock Simeck3264::round_inverse(SimeckBlock b, std::uint16_t k) {
  const std::uint16_t ny = static_cast<std::uint16_t>(b.x ^ simeck_f(b.y) ^ k);
  b.x = b.y;
  b.y = ny;
  return b;
}

Simeck3264::Simeck3264(const std::array<std::uint16_t, 4>& key) {
  rk_.resize(kSimeckRounds);
  // Registers (t2, t1, t0, k0) = (key[0], key[1], key[2], key[3]); round i
  // emits k0 and updates via the round function keyed by C ^ z_i, where
  // C = 2^16 - 4 and z is the m-sequence of X^5 + X^2 + 1 seeded with all
  // ones (z_{i+5} = z_{i+2} ^ z_i).
  std::uint16_t t2 = key[0];
  std::uint16_t t1 = key[1];
  std::uint16_t t0 = key[2];
  std::uint16_t k0 = key[3];
  std::uint64_t z = 0x1f;  // LFSR state bits z_i..z_{i+4}, LSB = z_i.
  for (int i = 0; i < kSimeckRounds; ++i) {
    rk_[i] = k0;
    const std::uint16_t rc =
        static_cast<std::uint16_t>(0xfffcu ^ (z & 1u));
    z = (z >> 1) | ((((z >> 2) ^ z) & 1u) << 4);
    const std::uint16_t nt2 =
        static_cast<std::uint16_t>(k0 ^ simeck_f(t0) ^ rc);
    k0 = t0;
    t0 = t1;
    t1 = t2;
    t2 = nt2;
  }
}

SimeckBlock Simeck3264::encrypt(SimeckBlock p, int rounds) const {
  assert(rounds >= 0 && rounds <= kSimeckRounds);
  for (int i = 0; i < rounds; ++i) p = round(p, rk_[i]);
  return p;
}

SimeckBlock Simeck3264::decrypt(SimeckBlock c, int rounds) const {
  assert(rounds >= 0 && rounds <= kSimeckRounds);
  for (int i = rounds - 1; i >= 0; --i) c = round_inverse(c, rk_[i]);
  return c;
}

}  // namespace mldist::ciphers
