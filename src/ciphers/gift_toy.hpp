// The 8-bit, two-round, unkeyed toy cipher of the paper's Fig. 1 (§2.1),
// used to demonstrate why the Markov product rule (Eq. 2) fails without
// round keys.
//
// State: two GIFT S-box nibbles Y[0] (bits 0..3) and Y[1] (bits 4..7).
// Round: S-box both nibbles, then a fixed bit permutation mixing them.
// Two rounds; the second round's output W2 is the ciphertext (no final
// permutation, matching the figure).
//
// The wiring is chosen so that every number in §2.1 holds exactly:
//   * dY1 = (2,3) -> dW1 = (5,8) with S-box probability 2^-5,
//   * the permutation sends dW1 = (5,8) to dY2 = (6,2),
//   * dY2 = (6,2) -> dW2 = (2,5) with S-box probability 2^-4,
//   * the Markov product rule predicts 2^-9, but the true probability is
//     2^-6: only the input pairs built from (Y1[0], Y1[1]) in
//     {(0,d), (0,e), (2,d), (2,e)} follow the whole characteristic.
#pragma once

#include <array>
#include <cstdint>

namespace mldist::ciphers {

/// Bit permutation applied between the two rounds: bit i moves to
/// kToyBitPerm[i].
inline constexpr std::array<int, 8> kToyBitPerm = {1, 0, 2, 3, 4, 6, 7, 5};

/// S-box layer on both nibbles of the 8-bit state.
std::uint8_t toy_sbox_layer(std::uint8_t s);

/// The inter-round bit permutation.
std::uint8_t toy_permute_bits(std::uint8_t s);

/// One toy round: S-box layer then bit permutation.
std::uint8_t toy_round(std::uint8_t s);

/// The full 2-round toy cipher of Fig. 1: round 1 (S + permutation), then a
/// final S-box layer.  Output is W2.
std::uint8_t toy_cipher(std::uint8_t y1);

/// Intermediate values for tracing a characteristic: W1, Y2, W2.
struct ToyTrace {
  std::uint8_t w1 = 0;
  std::uint8_t y2 = 0;
  std::uint8_t w2 = 0;
};
ToyTrace toy_trace(std::uint8_t y1);

/// Pack two nibbles (a = bits 0..3, b = bits 4..7) into the 8-bit state;
/// the paper writes states as the tuple (a, b).
constexpr std::uint8_t toy_pack(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>((a & 0xf) | (b << 4));
}

}  // namespace mldist::ciphers
