// Gimli-Cipher: MonkeyDuplex authenticated encryption over the Gimli
// permutation (Fig. 3 of the reproduced paper; NIST LWC submission
// parameters).
//
//   key 32 bytes | nonce 16 bytes | rate 16 bytes | tag 16 bytes
//
// Initialisation loads nonce || key into the state and permutes.  Associated
// data and plaintext are duplexed in 16-byte blocks; the final (possibly
// empty) block of each phase is padded with 0x01 inside the rate plus 0x01
// into the last state byte.  Ciphertext blocks equal the rate after the
// plaintext is XORed in.
//
// `RoundSchedule` controls round reduction per permutation call, which is
// what the paper's §4 experiments need: they reduce the two permutations
// executed before the first ciphertext block ("48 rounds") down to n total.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ciphers/gimli.hpp"

namespace mldist::ciphers {

inline constexpr std::size_t kGimliAeadKeyBytes = 32;
inline constexpr std::size_t kGimliAeadNonceBytes = 16;
inline constexpr std::size_t kGimliAeadTagBytes = 16;
inline constexpr std::size_t kGimliAeadRate = 16;

/// Rounds used by each phase's permutation calls.  0 means "identity
/// permutation" and is only meaningful for distinguisher experiments.
struct RoundSchedule {
  int init = kGimliRounds;     ///< the permutation after loading nonce || key
  int ad = kGimliRounds;       ///< permutations while absorbing AD
  int message = kGimliRounds;  ///< permutations while duplexing message blocks
};

struct AeadResult {
  std::vector<std::uint8_t> ciphertext;
  std::array<std::uint8_t, kGimliAeadTagBytes> tag{};
};

/// Encrypt: returns ciphertext (same length as `msg`) and tag.
AeadResult gimli_aead_encrypt(std::span<const std::uint8_t, kGimliAeadKeyBytes> key,
                              std::span<const std::uint8_t, kGimliAeadNonceBytes> nonce,
                              std::span<const std::uint8_t> ad,
                              std::span<const std::uint8_t> msg,
                              const RoundSchedule& schedule = {});

/// Decrypt-and-verify.  Returns the plaintext, or std::nullopt-like empty
/// optional semantics via the bool: `ok == false` means tag mismatch and the
/// plaintext must be discarded.
struct AeadOpenResult {
  bool ok = false;
  std::vector<std::uint8_t> plaintext;
};

AeadOpenResult gimli_aead_decrypt(std::span<const std::uint8_t, kGimliAeadKeyBytes> key,
                                  std::span<const std::uint8_t, kGimliAeadNonceBytes> nonce,
                                  std::span<const std::uint8_t> ad,
                                  std::span<const std::uint8_t> ct,
                                  std::span<const std::uint8_t, kGimliAeadTagBytes> tag,
                                  const RoundSchedule& schedule = {});

}  // namespace mldist::ciphers
