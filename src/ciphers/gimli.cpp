#include "ciphers/gimli.hpp"

#include <bit>
#include <cassert>
#include <vector>

#include "kernels/gimli_batch.hpp"
#include "util/bits.hpp"

namespace mldist::ciphers {

namespace {

constexpr std::uint32_t kRoundConstantBase = 0x9e377900u;

/// Inverse of the column SP-box T-function.  The forward map
///   c = x ^ (z << 1) ^ ((y & z) << 2)
///   b = y ^ x        ^ ((x | z) << 1)
///   a = z ^ y        ^ ((x & y) << 3)
/// only feeds LOWER bits into higher ones, so (x, y, z) is recovered bit by
/// bit from the least significant end.
void spbox_invert_words(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t& x, std::uint32_t& y, std::uint32_t& z) {
  x = y = z = 0;
  for (int i = 0; i < 32; ++i) {
    const auto bit = [](std::uint32_t w, int k) -> std::uint32_t {
      return k < 0 ? 0u : (w >> k) & 1u;
    };
    const std::uint32_t xi =
        bit(c, i) ^ bit(z, i - 1) ^ (bit(y, i - 2) & bit(z, i - 2));
    const std::uint32_t yi =
        bit(b, i) ^ xi ^ (bit(x, i - 1) | bit(z, i - 1));
    const std::uint32_t zi =
        bit(a, i) ^ yi ^ (bit(x, i - 3) & bit(y, i - 3));
    x |= xi << i;
    y |= yi << i;
    z |= zi << i;
  }
}

void small_swap(GimliState& s) {
  std::swap(s[0], s[1]);
  std::swap(s[2], s[3]);
}

void big_swap(GimliState& s) {
  std::swap(s[0], s[2]);
  std::swap(s[1], s[3]);
}

}  // namespace

void gimli_spbox_column(GimliState& s, int j) {
  const std::uint32_t x = std::rotl(s[j], 24);
  const std::uint32_t y = std::rotl(s[4 + j], 9);
  const std::uint32_t z = s[8 + j];
  s[8 + j] = x ^ (z << 1) ^ ((y & z) << 2);
  s[4 + j] = y ^ x ^ ((x | z) << 1);
  s[j] = z ^ y ^ ((x & y) << 3);
}

void gimli_rounds(GimliState& s, int hi, int lo) {
  assert(1 <= lo && lo <= hi && hi <= kGimliRounds);
  for (int r = hi; r >= lo; --r) {
    for (int j = 0; j < 4; ++j) gimli_spbox_column(s, j);
    if (r % 4 == 0) {
      small_swap(s);
      s[0] ^= kRoundConstantBase ^ static_cast<std::uint32_t>(r);
    } else if (r % 4 == 2) {
      big_swap(s);
    }
  }
}

void gimli_permute(GimliState& s) { gimli_rounds(s, kGimliRounds, 1); }

void gimli_reduced(GimliState& s, int n) {
  assert(n >= 0 && n <= kGimliRounds);
  if (n > 0) gimli_rounds(s, n, 1);
}

void gimli_rounds_inverse(GimliState& s, int hi, int lo) {
  assert(1 <= lo && lo <= hi && hi <= kGimliRounds);
  for (int r = lo; r <= hi; ++r) {
    if (r % 4 == 0) {
      s[0] ^= kRoundConstantBase ^ static_cast<std::uint32_t>(r);
      small_swap(s);
    } else if (r % 4 == 2) {
      big_swap(s);
    }
    for (int j = 0; j < 4; ++j) {
      std::uint32_t x = 0;
      std::uint32_t y = 0;
      std::uint32_t z = 0;
      spbox_invert_words(s[j], s[4 + j], s[8 + j], x, y, z);
      s[j] = std::rotr(x, 24);
      s[4 + j] = std::rotr(y, 9);
      s[8 + j] = z;
    }
  }
}

void gimli_permute_inverse(GimliState& s) {
  gimli_rounds_inverse(s, kGimliRounds, 1);
}

void gimli_rounds_batch(std::uint32_t* soa, std::size_t n, int hi, int lo) {
  assert(1 <= lo && lo <= hi && hi <= kGimliRounds);
  kernels::gimli_rounds_batch(soa, n, hi, lo);
}

void gimli_rounds_batch(GimliState* states, std::size_t n, int hi, int lo) {
  if (n == 0) return;
  std::vector<std::uint32_t> soa(12 * n);
  for (std::size_t s = 0; s < n; ++s) {
    for (int w = 0; w < 12; ++w) soa[static_cast<std::size_t>(w) * n + s] = states[s][w];
  }
  gimli_rounds_batch(soa.data(), n, hi, lo);
  for (std::size_t s = 0; s < n; ++s) {
    for (int w = 0; w < 12; ++w) states[s][w] = soa[static_cast<std::size_t>(w) * n + s];
  }
}

void gimli_reduced_batch(std::uint32_t* soa, std::size_t n, int n_rounds) {
  assert(n_rounds >= 0 && n_rounds <= kGimliRounds);
  if (n_rounds > 0) gimli_rounds_batch(soa, n, n_rounds, 1);
}

void gimli_state_to_bytes(const GimliState& s, std::uint8_t out[48]) {
  for (int i = 0; i < 12; ++i) util::store_u32_le(out + 4 * i, s[i]);
}

GimliState gimli_state_from_bytes(const std::uint8_t in[48]) {
  GimliState s;
  for (int i = 0; i < 12; ++i) s[i] = util::load_u32_le(in + 4 * i);
  return s;
}

}  // namespace mldist::ciphers
