#include "ciphers/speck3264.hpp"

#include <cassert>

namespace mldist::ciphers {

namespace {
constexpr std::uint16_t rotl16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v << r) | (v >> (16 - r)));
}
constexpr std::uint16_t rotr16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v >> r) | (v << (16 - r)));
}
}  // namespace

SpeckBlock Speck3264::round(SpeckBlock b, std::uint16_t k) {
  b.x = static_cast<std::uint16_t>(rotr16(b.x, 7) + b.y) ^ k;
  b.y = rotl16(b.y, 2) ^ b.x;
  return b;
}

SpeckBlock Speck3264::round_inverse(SpeckBlock b, std::uint16_t k) {
  b.y = rotr16(static_cast<std::uint16_t>(b.y ^ b.x), 2);
  b.x = rotl16(static_cast<std::uint16_t>((b.x ^ k) - b.y), 7);
  return b;
}

Speck3264::Speck3264(const std::array<std::uint16_t, 4>& key) {
  rk_.resize(kSpeckRounds);
  // key[3] is k[0]; key[2], key[1], key[0] are l[0], l[1], l[2].
  std::array<std::uint16_t, kSpeckRounds + 2> l{};
  l[0] = key[2];
  l[1] = key[1];
  l[2] = key[0];
  rk_[0] = key[3];
  for (int i = 0; i < kSpeckRounds - 1; ++i) {
    l[i + 3] = static_cast<std::uint16_t>(
        (rk_[i] + rotr16(l[i], 7)) ^ static_cast<std::uint16_t>(i));
    rk_[i + 1] = rotl16(rk_[i], 2) ^ l[i + 3];
  }
}

SpeckBlock Speck3264::encrypt(SpeckBlock p, int rounds) const {
  assert(rounds >= 0 && rounds <= kSpeckRounds);
  for (int i = 0; i < rounds; ++i) p = round(p, rk_[i]);
  return p;
}

SpeckBlock Speck3264::decrypt(SpeckBlock c, int rounds) const {
  assert(rounds >= 0 && rounds <= kSpeckRounds);
  for (int i = rounds - 1; i >= 0; --i) c = round_inverse(c, rk_[i]);
  return c;
}

}  // namespace mldist::ciphers
