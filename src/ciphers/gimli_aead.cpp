#include "ciphers/gimli_aead.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mldist::ciphers {

namespace {

void xor_state_byte(GimliState& s, std::size_t i, std::uint8_t v) {
  s[i / 4] ^= static_cast<std::uint32_t>(v) << (8 * (i % 4));
}

std::uint8_t state_byte(const GimliState& s, std::size_t i) {
  return static_cast<std::uint8_t>(s[i / 4] >> (8 * (i % 4)));
}

void check_schedule(const RoundSchedule& sched) {
  for (int r : {sched.init, sched.ad, sched.message}) {
    if (r < 0 || r > kGimliRounds) {
      throw std::invalid_argument("RoundSchedule: rounds must be in [0, 24]");
    }
  }
}

GimliState init_state(std::span<const std::uint8_t, kGimliAeadKeyBytes> key,
                      std::span<const std::uint8_t, kGimliAeadNonceBytes> nonce,
                      int init_rounds) {
  std::uint8_t bytes[kGimliStateBytes];
  std::memcpy(bytes, nonce.data(), kGimliAeadNonceBytes);
  std::memcpy(bytes + kGimliAeadNonceBytes, key.data(), kGimliAeadKeyBytes);
  GimliState s = gimli_state_from_bytes(bytes);
  gimli_reduced(s, init_rounds);
  return s;
}

/// Absorb associated data: full blocks, then the padded final block (which
/// is always processed, even when `ad` is empty or block-aligned).
void absorb_ad(GimliState& s, std::span<const std::uint8_t> ad, int rounds) {
  std::size_t off = 0;
  while (ad.size() - off >= kGimliAeadRate) {
    for (std::size_t i = 0; i < kGimliAeadRate; ++i) {
      xor_state_byte(s, i, ad[off + i]);
    }
    gimli_reduced(s, rounds);
    off += kGimliAeadRate;
  }
  const std::size_t tail = ad.size() - off;
  for (std::size_t i = 0; i < tail; ++i) xor_state_byte(s, i, ad[off + i]);
  xor_state_byte(s, tail, 0x01);
  xor_state_byte(s, kGimliStateBytes - 1, 0x01);
  gimli_reduced(s, rounds);
}

}  // namespace

AeadResult gimli_aead_encrypt(std::span<const std::uint8_t, kGimliAeadKeyBytes> key,
                              std::span<const std::uint8_t, kGimliAeadNonceBytes> nonce,
                              std::span<const std::uint8_t> ad,
                              std::span<const std::uint8_t> msg,
                              const RoundSchedule& schedule) {
  check_schedule(schedule);
  GimliState s = init_state(key, nonce, schedule.init);
  absorb_ad(s, ad, schedule.ad);

  AeadResult out;
  out.ciphertext.resize(msg.size());
  std::size_t off = 0;
  while (msg.size() - off >= kGimliAeadRate) {
    for (std::size_t i = 0; i < kGimliAeadRate; ++i) {
      xor_state_byte(s, i, msg[off + i]);
      out.ciphertext[off + i] = state_byte(s, i);
    }
    gimli_reduced(s, schedule.message);
    off += kGimliAeadRate;
  }
  const std::size_t tail = msg.size() - off;
  for (std::size_t i = 0; i < tail; ++i) {
    xor_state_byte(s, i, msg[off + i]);
    out.ciphertext[off + i] = state_byte(s, i);
  }
  xor_state_byte(s, tail, 0x01);
  xor_state_byte(s, kGimliStateBytes - 1, 0x01);
  gimli_reduced(s, schedule.message);

  for (std::size_t i = 0; i < kGimliAeadTagBytes; ++i) out.tag[i] = state_byte(s, i);
  return out;
}

AeadOpenResult gimli_aead_decrypt(std::span<const std::uint8_t, kGimliAeadKeyBytes> key,
                                  std::span<const std::uint8_t, kGimliAeadNonceBytes> nonce,
                                  std::span<const std::uint8_t> ad,
                                  std::span<const std::uint8_t> ct,
                                  std::span<const std::uint8_t, kGimliAeadTagBytes> tag,
                                  const RoundSchedule& schedule) {
  check_schedule(schedule);
  GimliState s = init_state(key, nonce, schedule.init);
  absorb_ad(s, ad, schedule.ad);

  AeadOpenResult out;
  out.plaintext.resize(ct.size());
  std::size_t off = 0;
  while (ct.size() - off >= kGimliAeadRate) {
    for (std::size_t i = 0; i < kGimliAeadRate; ++i) {
      const std::uint8_t m = static_cast<std::uint8_t>(state_byte(s, i) ^ ct[off + i]);
      out.plaintext[off + i] = m;
      xor_state_byte(s, i, m);  // rate becomes the ciphertext byte
    }
    gimli_reduced(s, schedule.message);
    off += kGimliAeadRate;
  }
  const std::size_t tail = ct.size() - off;
  for (std::size_t i = 0; i < tail; ++i) {
    const std::uint8_t m = static_cast<std::uint8_t>(state_byte(s, i) ^ ct[off + i]);
    out.plaintext[off + i] = m;
    xor_state_byte(s, i, m);
  }
  xor_state_byte(s, tail, 0x01);
  xor_state_byte(s, kGimliStateBytes - 1, 0x01);
  gimli_reduced(s, schedule.message);

  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kGimliAeadTagBytes; ++i) {
    diff |= static_cast<std::uint8_t>(state_byte(s, i) ^ tag[i]);
  }
  out.ok = (diff == 0);
  if (!out.ok) out.plaintext.clear();
  return out;
}

}  // namespace mldist::ciphers
