#include "ciphers/gift128.hpp"

#include <cassert>

#include "ciphers/gift64.hpp"

namespace mldist::ciphers {

namespace {

constexpr std::uint16_t rotr16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v >> r) | (v << (16 - r)));
}

constexpr std::array<int, 6> kConstBits = {3, 7, 11, 15, 19, 23};

int get_bit(const Gift128Block& b, int i) {
  return i < 64 ? static_cast<int>((b.lo >> i) & 1)
                : static_cast<int>((b.hi >> (i - 64)) & 1);
}

void set_bit(Gift128Block& b, int i, int v) {
  if (v == 0) return;
  if (i < 64) {
    b.lo |= 1ULL << i;
  } else {
    b.hi |= 1ULL << (i - 64);
  }
}

std::uint8_t inverse_sbox(std::uint8_t y) { return gift_sbox_inverse(y); }

}  // namespace

int gift128_bit_permutation(int i) {
  assert(i >= 0 && i < 128);
  // P128(i) = 4*floor(i/16) + 32*((3*floor((i mod 16)/4) + (i mod 4)) mod 4)
  //           + (i mod 4)           (GIFT paper, Table "P128")
  const int q = i / 16;
  const int r = (i % 16) / 4;
  const int b = i % 4;
  return 4 * q + 32 * ((3 * r + b) % 4) + b;
}

Gift128Block Gift128::sub_perm(Gift128Block s) {
  Gift128Block t{};
  for (int n = 0; n < 16; ++n) {
    t.lo |= static_cast<std::uint64_t>(kGiftSbox[(s.lo >> (4 * n)) & 0xf])
            << (4 * n);
    t.hi |= static_cast<std::uint64_t>(kGiftSbox[(s.hi >> (4 * n)) & 0xf])
            << (4 * n);
  }
  Gift128Block p{};
  for (int i = 0; i < 128; ++i) {
    set_bit(p, gift128_bit_permutation(i), get_bit(t, i));
  }
  return p;
}

Gift128Block Gift128::sub_perm_inverse(Gift128Block s) {
  Gift128Block t{};
  for (int i = 0; i < 128; ++i) {
    set_bit(t, i, get_bit(s, gift128_bit_permutation(i)));
  }
  Gift128Block p{};
  for (int n = 0; n < 16; ++n) {
    p.lo |= static_cast<std::uint64_t>(
                inverse_sbox(static_cast<std::uint8_t>((t.lo >> (4 * n)) & 0xf)))
            << (4 * n);
    p.hi |= static_cast<std::uint64_t>(
                inverse_sbox(static_cast<std::uint8_t>((t.hi >> (4 * n)) & 0xf)))
            << (4 * n);
  }
  return p;
}

Gift128::Gift128(const std::array<std::uint16_t, 8>& key) {
  std::array<std::uint16_t, 8> k{};
  for (int j = 0; j < 8; ++j) k[7 - j] = key[j];

  std::uint8_t c = 0;
  for (int r = 0; r < kGift128Rounds; ++r) {
    // GIFT-128 round key: U = k5 || k4, V = k1 || k0 (32 bits each);
    // V_i -> state bit 4i + 1, U_i -> state bit 4i + 2.
    const std::uint32_t u =
        (static_cast<std::uint32_t>(k[5]) << 16) | k[4];
    const std::uint32_t v =
        (static_cast<std::uint32_t>(k[1]) << 16) | k[0];
    Gift128Block mask{};
    for (int i = 0; i < 32; ++i) {
      set_bit(mask, 4 * i + 1, static_cast<int>((v >> i) & 1));
      set_bit(mask, 4 * i + 2, static_cast<int>((u >> i) & 1));
    }
    c = static_cast<std::uint8_t>(
        ((c << 1) | (((c >> 5) ^ (c >> 4) ^ 1) & 1)) & 0x3f);
    for (int i = 0; i < 6; ++i) {
      set_bit(mask, kConstBits[i], static_cast<int>((c >> i) & 1));
    }
    set_bit(mask, 127, 1);
    masks_[r] = mask;

    const std::uint16_t nk7 = rotr16(k[1], 2);
    const std::uint16_t nk6 = rotr16(k[0], 12);
    for (int j = 0; j < 6; ++j) k[j] = k[j + 2];
    k[6] = nk6;
    k[7] = nk7;
  }
}

Gift128Block Gift128::encrypt(Gift128Block p, int rounds) const {
  assert(rounds >= 0 && rounds <= kGift128Rounds);
  for (int r = 0; r < rounds; ++r) {
    p = sub_perm(p);
    p.lo ^= masks_[r].lo;
    p.hi ^= masks_[r].hi;
  }
  return p;
}

Gift128Block Gift128::decrypt(Gift128Block cblock, int rounds) const {
  assert(rounds >= 0 && rounds <= kGift128Rounds);
  for (int r = rounds - 1; r >= 0; --r) {
    cblock.lo ^= masks_[r].lo;
    cblock.hi ^= masks_[r].hi;
    cblock = sub_perm_inverse(cblock);
  }
  return cblock;
}

}  // namespace mldist::ciphers
