// Gimli-Hash: sponge construction over the Gimli permutation (Fig. 2 of the
// reproduced paper; NIST LWC submission parameters).
//
//   rate     = 16 bytes, capacity = 32 bytes, digest = 32 bytes
//   padding  = append 0x01 to the message inside the rate, and XOR 0x01 into
//              the final state byte (domain separation) before the last
//              absorb permutation
//
// Every permutation call can be round-reduced (the paper's distinguishers
// run the permutation processing the last message block with 6/7/8 rounds).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ciphers/gimli.hpp"

namespace mldist::ciphers {

inline constexpr std::size_t kGimliHashRate = 16;
inline constexpr std::size_t kGimliHashDigestBytes = 32;

/// One-shot Gimli-Hash of `msg`.  All permutation calls use `rounds` rounds
/// (24 = the real hash; smaller values give the round-reduced variants the
/// paper attacks).
std::vector<std::uint8_t> gimli_hash(std::span<const std::uint8_t> msg,
                                     int rounds = kGimliRounds);

/// Streaming interface; absorb in arbitrary chunks, then squeeze.
class GimliHash {
 public:
  explicit GimliHash(int rounds = kGimliRounds);

  void absorb(std::span<const std::uint8_t> data);
  /// Finalise and produce the 32-byte digest.  May be called once.
  std::vector<std::uint8_t> digest();

 private:
  void permute();

  GimliState state_{};
  std::size_t pos_ = 0;  // fill position inside the current rate block
  int rounds_;
  bool finished_ = false;
};

}  // namespace mldist::ciphers
