#include "nn/mat.hpp"

#include <cassert>

#include "kernels/gemm.hpp"
#include "util/thread_pool.hpp"

namespace mldist::nn {

namespace {

/// Below this many multiply-accumulates the fork/join overhead dominates.
constexpr std::size_t kParallelThreshold = 1u << 19;

void gemm_rows(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               Mat& out, std::size_t m, std::size_t k, std::size_t n,
               const kernels::GemmEpilogue& epilogue) {
  mldist::nn::gemm_rows(a, a_rs, a_cs, b, b_rs, b_cs, out.data(), m, k, n,
                        epilogue);
}

}  // namespace

// All products funnel through this: C rows [begin, end) are computed by
// kernels::gemm on the active dispatch implementation.  Parallelism stays a
// row partition of C, so each output element sees the same k-ascending fma
// chain regardless of worker count or kernel choice — matmul results are
// bitwise deterministic across both.
void gemm_rows(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const kernels::GemmEpilogue& epilogue) {
  const auto rows = [&](std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    kernels::gemm(a + static_cast<std::ptrdiff_t>(begin) * a_rs, a_rs, a_cs,
                  b, b_rs, b_cs, c + begin * n, end - begin, k, n, epilogue);
  };
  if (m * k * n >= kParallelThreshold && m > 1) {
    util::ThreadPool::global().parallel_for(m, rows);
  } else {
    rows(0, m);
  }
}

void matmul(const Mat& a, const Mat& b, Mat& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  out = Mat(m, n);
  gemm_rows(a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
            static_cast<std::ptrdiff_t>(n), 1, out, m, k, n, {});
}

void matmul_at_b(const Mat& a, const Mat& b, Mat& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  out = Mat(m, n);
  // a is K x M row-major, so A^T element (i, kk) lives at a[kk * m + i]:
  // row stride 1, column stride m.
  gemm_rows(a.data(), 1, static_cast<std::ptrdiff_t>(m), b.data(),
            static_cast<std::ptrdiff_t>(n), 1, out, m, k, n, {});
}

void matmul_a_bt(const Mat& a, const Mat& b, Mat& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  out = Mat(m, n);
  // b is N x K row-major, so B^T element (kk, j) lives at b[j * k + kk]:
  // row stride 1, column stride k.
  gemm_rows(a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(), 1,
            static_cast<std::ptrdiff_t>(k), out, m, k, n, {});
}

void matmul_bias(const Mat& a, const Mat& b, const std::vector<float>& bias,
                 Mat& out, kernels::Activation act, float alpha) {
  assert(a.cols() == b.rows());
  assert(bias.size() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  out = Mat(m, n);
  kernels::GemmEpilogue epilogue;
  epilogue.bias = bias.data();
  epilogue.act = act;
  epilogue.alpha = alpha;
  gemm_rows(a.data(), static_cast<std::ptrdiff_t>(k), 1, b.data(),
            static_cast<std::ptrdiff_t>(n), 1, out, m, k, n, epilogue);
}

void add_row_vector(Mat& m, const std::vector<float>& bias) {
  assert(m.cols() == bias.size());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* __restrict__ mi = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) mi[j] += bias[j];
  }
}

}  // namespace mldist::nn
