#include "nn/mat.hpp"

#include <cassert>

#include "util/thread_pool.hpp"

namespace mldist::nn {

namespace {
/// Below this many multiply-accumulates the fork/join overhead dominates.
constexpr std::size_t kParallelThreshold = 1u << 19;
}  // namespace

void matmul(const Mat& a, const Mat& b, Mat& out) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  out = Mat(m, n);
  // i-k-j loop order keeps the inner loop contiguous in both b and out.
  const auto rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      float* __restrict__ oi = out.row(i);
      const float* __restrict__ ai = a.row(i);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ai[kk];
        if (av == 0.0f) continue;  // bit-valued inputs are ~50% zeros
        const float* __restrict__ bk = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) oi[j] += av * bk[j];
      }
    }
  };
  if (m * k * n >= kParallelThreshold && m > 1) {
    util::ThreadPool::global().parallel_for(m, rows);
  } else {
    rows(0, m);
  }
}

void matmul_at_b(const Mat& a, const Mat& b, Mat& out) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  out = Mat(m, n);
  // Partition over output rows so chunks write disjoint memory; a is read
  // with stride m, which the k-major inner loop amortises.
  const auto rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* __restrict__ ak = a.row(kk);
      const float* __restrict__ bk = b.row(kk);
      for (std::size_t i = begin; i < end; ++i) {
        const float av = ak[i];
        if (av == 0.0f) continue;
        float* __restrict__ oi = out.row(i);
        for (std::size_t j = 0; j < n; ++j) oi[j] += av * bk[j];
      }
    }
  };
  if (m * k * n >= kParallelThreshold && m > 1) {
    util::ThreadPool::global().parallel_for(m, rows);
  } else {
    rows(0, m);
  }
}

void matmul_a_bt(const Mat& a, const Mat& b, Mat& out) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  out = Mat(m, n);
  const auto rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const float* __restrict__ ai = a.row(i);
      float* __restrict__ oi = out.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict__ bj = b.row(j);
        float s = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) s += ai[kk] * bj[kk];
        oi[j] = s;
      }
    }
  };
  if (m * k * n >= kParallelThreshold && m > 1) {
    util::ThreadPool::global().parallel_for(m, rows);
  } else {
    rows(0, m);
  }
}

void add_row_vector(Mat& m, const std::vector<float>& bias) {
  assert(m.cols() == bias.size());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* __restrict__ mi = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) mi[j] += bias[j];
  }
}

}  // namespace mldist::nn
