// Inverted dropout: during training each activation is zeroed with
// probability p and the survivors scaled by 1/(1-p); evaluation is the
// identity.  The mask stream is seeded so training stays reproducible.
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class Dropout : public Layer {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0xd20b0a7ULL);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }

  float rate() const { return p_; }

 private:
  float p_;
  util::Xoshiro256 rng_;
  Mat mask_;  // kept/scaled multipliers of the last training forward
};

}  // namespace mldist::nn
