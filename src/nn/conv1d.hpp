// 1-D convolution over bit sequences, plus the global max-pooling reduction
// used by the CNN architectures of Table 3.
//
// Layout convention: a sample row of width L*C is position-major — feature
// index = position * channels + channel.  `Conv1D` uses "same" zero padding
// and stride 1, which keeps L constant through the stack (the paper does not
// state kernel sizes; we default to 3 and document the choice).
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class Conv1D : public Layer {
 public:
  Conv1D(std::size_t length, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, util::Xoshiro256& rng);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override;
  std::size_t input_size() const override { return length_ * cin_; }

  std::size_t length() const { return length_; }
  std::size_t in_channels() const { return cin_; }
  std::size_t out_channels() const { return cout_; }
  std::size_t kernel_size() const { return kernel_; }
  const Mat& weights() const { return w_; }
  const std::vector<float>& bias() const { return b_; }

 private:
  Mat im2col(const Mat& x) const;

  std::size_t length_;
  std::size_t cin_;
  std::size_t cout_;
  std::size_t kernel_;
  Mat w_;                  // (kernel * cin) x cout
  std::vector<float> b_;   // cout
  Mat dw_;
  std::vector<float> db_;
  // im2col patch matrix of the last training forward: row (n * L + p) holds
  // the kernel window around position p of sample n, zero-padded at the
  // sequence edges; column index = k * cin + c.  Backward consumes it
  // directly as the GEMM operand for the weight gradient.
  Mat patches_;
};

/// Max over positions, per channel: (B, L*C) -> (B, C).
class GlobalMaxPool1D : public Layer {
 public:
  GlobalMaxPool1D(std::size_t length, std::size_t channels)
      : length_(length), channels_(channels) {}

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override { return "global_max_pool1d"; }
  std::size_t output_size(std::size_t input_size) const override;
  std::size_t input_size() const override { return length_ * channels_; }

  std::size_t length() const { return length_; }
  std::size_t channels() const { return channels_; }

 private:
  std::size_t length_;
  std::size_t channels_;
  std::vector<std::size_t> argmax_;  // (B * C) winning positions
  std::size_t batch_ = 0;
};

}  // namespace mldist::nn
