#include "nn/residual.hpp"

#include <stdexcept>

namespace mldist::nn {

Residual& Residual::add(std::unique_ptr<Layer> layer) {
  inner_.push_back(std::move(layer));
  return *this;
}

Mat Residual::forward(const Mat& x, bool training) {
  Mat y = x;
  for (auto& l : inner_) y = l->forward(y, training);
  if (y.rows() != x.rows() || y.cols() != x.cols()) {
    throw std::invalid_argument(
        "Residual: inner stack must preserve the input shape");
  }
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] += x.data()[i];
  return y;
}

Mat Residual::backward(const Mat& grad_out) {
  Mat g = grad_out;
  for (std::size_t li = inner_.size(); li-- > 0;) {
    g = inner_[li]->backward(g);
  }
  for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] += grad_out.data()[i];
  return g;
}

std::vector<ParamView> Residual::params() {
  std::vector<ParamView> out;
  for (auto& l : inner_) {
    for (const auto& p : l->params()) out.push_back(p);
  }
  return out;
}

std::string Residual::name() const {
  std::string s = "residual[";
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    if (i > 0) s += " ";
    s += inner_[i]->name();
  }
  return s + "]";
}

std::size_t Residual::output_size(std::size_t input_size) const {
  std::size_t w = input_size;
  for (const auto& l : inner_) w = l->output_size(w);
  if (w != input_size) {
    throw std::invalid_argument(
        "Residual: inner stack must preserve the input width");
  }
  return w;
}

}  // namespace mldist::nn
