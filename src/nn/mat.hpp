// Dense row-major float32 matrix: the only tensor type the NN library needs.
// A (batch x features) matrix carries one sample per row.
#pragma once

#include <cstddef>
#include <vector>

#include "kernels/gemm.hpp"

namespace mldist::nn {

class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(float v) { data_.assign(data_.size(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b               (a: M x K, b: K x N)
void matmul(const Mat& a, const Mat& b, Mat& out);
/// out = a^T * b             (a: K x M, b: K x N) — used for weight grads
void matmul_at_b(const Mat& a, const Mat& b, Mat& out);
/// out = a * b^T             (a: M x K, b: N x K) — used for input grads
void matmul_a_bt(const Mat& a, const Mat& b, Mat& out);
/// out = act(a * b + bias) in one kernel call — the fused-epilogue path the
/// Dense/LSTM forward passes use.  Bitwise identical to matmul followed by
/// add_row_vector and the activation (the epilogue applies the same plain
/// add and compare per element, just without the intermediate stores).
void matmul_bias(const Mat& a, const Mat& b, const std::vector<float>& bias,
                 Mat& out,
                 kernels::Activation act = kernels::Activation::kNone,
                 float alpha = 0.3f);
/// Add the row vector `bias` (1 x N) to every row of `m` (M x N).
void add_row_vector(Mat& m, const std::vector<float>& bias);

/// Row-parallel GEMM over raw row-major buffers: C rows are partitioned
/// across the global thread pool above a flop threshold.  The Mat product
/// helpers above and the ir::Executor dense op share this; a row partition
/// keeps every output element's fma chain intact, so the result is bitwise
/// identical to one kernels::gemm call for any worker count.
void gemm_rows(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const kernels::GemmEpilogue& epilogue);

}  // namespace mldist::nn
