#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace mldist::nn {

BatchNorm::BatchNorm(std::size_t features, float momentum, float eps)
    : features_(features), momentum_(momentum), eps_(eps),
      gamma_(features, 1.0f), beta_(features, 0.0f), dgamma_(features, 0.0f),
      dbeta_(features, 0.0f), run_mean_(features, 0.0f),
      run_var_(features, 1.0f) {}

Mat BatchNorm::forward(const Mat& x, bool training) {
  if (x.cols() != features_) {
    throw std::invalid_argument("BatchNorm: input width mismatch");
  }
  const std::size_t batch = x.rows();
  Mat y(batch, features_);
  if (!training) {
    for (std::size_t n = 0; n < batch; ++n) {
      const float* xr = x.row(n);
      float* yr = y.row(n);
      for (std::size_t j = 0; j < features_; ++j) {
        const float xhat =
            (xr[j] - run_mean_[j]) / std::sqrt(run_var_[j] + eps_);
        yr[j] = gamma_[j] * xhat + beta_[j];
      }
    }
    return y;
  }

  std::vector<float> mean(features_, 0.0f);
  batch_var_.assign(features_, 0.0f);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xr = x.row(n);
    for (std::size_t j = 0; j < features_; ++j) mean[j] += xr[j];
  }
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t j = 0; j < features_; ++j) mean[j] *= inv_b;
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xr = x.row(n);
    for (std::size_t j = 0; j < features_; ++j) {
      const float d = xr[j] - mean[j];
      batch_var_[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < features_; ++j) batch_var_[j] *= inv_b;

  xhat_ = Mat(batch, features_);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xr = x.row(n);
    float* xh = xhat_.row(n);
    float* yr = y.row(n);
    for (std::size_t j = 0; j < features_; ++j) {
      xh[j] = (xr[j] - mean[j]) / std::sqrt(batch_var_[j] + eps_);
      yr[j] = gamma_[j] * xh[j] + beta_[j];
    }
  }
  for (std::size_t j = 0; j < features_; ++j) {
    run_mean_[j] = momentum_ * run_mean_[j] + (1.0f - momentum_) * mean[j];
    run_var_[j] = momentum_ * run_var_[j] + (1.0f - momentum_) * batch_var_[j];
  }
  return y;
}

Mat BatchNorm::backward(const Mat& grad_out) {
  const std::size_t batch = grad_out.rows();
  const float inv_b = 1.0f / static_cast<float>(batch);
  Mat dx(batch, features_);

  // Column sums needed by the batch-stat terms.
  std::vector<float> sum_dy(features_, 0.0f);
  std::vector<float> sum_dy_xhat(features_, 0.0f);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* g = grad_out.row(n);
    const float* xh = xhat_.row(n);
    for (std::size_t j = 0; j < features_; ++j) {
      sum_dy[j] += g[j];
      sum_dy_xhat[j] += g[j] * xh[j];
    }
  }
  for (std::size_t j = 0; j < features_; ++j) {
    dgamma_[j] += sum_dy_xhat[j];
    dbeta_[j] += sum_dy[j];
  }
  for (std::size_t n = 0; n < batch; ++n) {
    const float* g = grad_out.row(n);
    const float* xh = xhat_.row(n);
    float* d = dx.row(n);
    for (std::size_t j = 0; j < features_; ++j) {
      const float inv_std = 1.0f / std::sqrt(batch_var_[j] + eps_);
      d[j] = gamma_[j] * inv_std *
             (g[j] - inv_b * sum_dy[j] - inv_b * xh[j] * sum_dy_xhat[j]);
    }
  }
  return dx;
}

std::vector<ParamView> BatchNorm::params() {
  return {{gamma_.data(), dgamma_.data(), gamma_.size()},
          {beta_.data(), dbeta_.data(), beta_.size()}};
}

std::string BatchNorm::name() const {
  return "batchnorm(" + std::to_string(features_) + ")";
}

std::size_t BatchNorm::output_size(std::size_t input_size) const {
  if (input_size != features_) {
    throw std::invalid_argument("BatchNorm: input width mismatch");
  }
  return features_;
}

}  // namespace mldist::nn
