// Residual wrapper: y = x + F(x) for an inner layer stack F with matching
// input/output width — the skip connection of Gohr's deep residual
// distinguisher (§2.3).
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace mldist::nn {

class Residual : public Layer {
 public:
  Residual() = default;

  /// Append a layer to the inner stack F.
  Residual& add(std::unique_ptr<Layer> layer);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override;
  std::size_t input_size() const override {
    return inner_.empty() ? 0 : inner_.front()->input_size();
  }

  std::size_t inner_count() const { return inner_.size(); }
  Layer& inner(std::size_t i) { return *inner_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
};

}  // namespace mldist::nn
