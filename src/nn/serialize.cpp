#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/log.hpp"
#include "util/crc32.hpp"

namespace mldist::nn {

namespace {
// NNB2 = NNB1 plus a uint32 graph-topology hash right after the magic
// (Sequential::topology_hash(): CRC-32 over the lowered inference graph's
// op kinds, edges, and shapes).  Tensor count/shape checks catch most
// architecture mismatches by accident; the hash pins the structure itself,
// so e.g. two different layer orders with identical parameter shapes can
// no longer swap files.  NNB1 files load with a warning.
constexpr char kMagic[4] = {'N', 'N', 'B', '2'};
constexpr char kLegacyMagic[4] = {'N', 'N', 'B', '1'};
// CRC footer appended after the tensors: kCrcMagic + uint32 CRC-32 of every
// payload byte before the footer.  Legacy files simply end at the last
// tensor; load_params tolerates the missing footer (with a warning) so
// pre-footer model files keep loading.
constexpr char kCrcMagic[4] = {'C', 'R', 'C', '1'};
}

void save_params(Sequential& model, std::ostream& out) {
  util::Crc32 crc;
  const auto put = [&](const void* data, std::size_t n) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    crc.update(data, n);
  };
  put(kMagic, sizeof(kMagic));
  const std::uint32_t topo = model.topology_hash();
  put(&topo, sizeof(topo));
  const auto params = model.params();
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  put(&count, sizeof(count));
  for (const auto& p : params) {
    const std::uint64_t size = p.size;
    put(&size, sizeof(size));
    put(p.value, size * sizeof(float));
  }
  out.write(kCrcMagic, sizeof(kCrcMagic));
  const std::uint32_t sum = crc.value();
  out.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
  if (!out) throw std::runtime_error("save_params: stream write failed");
}

void load_params(Sequential& model, std::istream& in) {
  util::Crc32 crc;
  const auto get = [&](void* data, std::size_t n) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (in) crc.update(data, n);
  };
  char magic[4];
  get(magic, sizeof(magic));
  if (!in) throw std::runtime_error("load_params: bad magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    std::uint32_t topo = 0;
    get(&topo, sizeof(topo));
    if (!in) throw std::runtime_error("load_params: truncated stream");
    const std::uint32_t expect = model.topology_hash();
    if (topo != expect) {
      throw std::runtime_error(
          "load_params: model topology mismatch (file graph hash " +
          std::to_string(topo) + ", model graph hash " +
          std::to_string(expect) + ")");
    }
  } else if (std::memcmp(magic, kLegacyMagic, sizeof(kLegacyMagic)) == 0) {
    obs::log_warn("nn.serialize",
                  "load_params: warning: no graph-topology hash (legacy "
                  "NNB1 model file); architecture not verified");
  } else {
    throw std::runtime_error("load_params: bad magic");
  }
  std::uint32_t count = 0;
  get(&count, sizeof(count));
  const auto params = model.params();
  if (!in || count != params.size()) {
    throw std::runtime_error("load_params: tensor count mismatch");
  }
  for (const auto& p : params) {
    std::uint64_t size = 0;
    get(&size, sizeof(size));
    if (!in || size != p.size) {
      throw std::runtime_error("load_params: tensor shape mismatch");
    }
    get(p.value, size * sizeof(float));
    if (!in) throw std::runtime_error("load_params: truncated stream");
  }
  // Integrity footer.  A clean end-of-stream here is a legacy (pre-CRC)
  // file: warn but accept.  Anything else must be a valid footer whose
  // checksum matches the payload just read.
  char footer[4];
  in.read(footer, sizeof(footer));
  if (in.gcount() == 0) {
    obs::log_warn("nn.serialize",
                  "load_params: warning: no CRC32 footer (legacy model "
                  "file); integrity not verified");
    return;
  }
  if (in.gcount() != sizeof(footer) ||
      std::memcmp(footer, kCrcMagic, sizeof(kCrcMagic)) != 0) {
    throw std::runtime_error(
        "load_params: corrupt model file (bad CRC footer)");
  }
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in) {
    throw std::runtime_error(
        "load_params: corrupt model file (truncated CRC footer)");
  }
  if (stored != crc.value()) {
    throw std::runtime_error(
        "load_params: corrupt model file (CRC32 mismatch)");
  }
}

void save_params(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  save_params(model, out);
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  load_params(model, in);
}

}  // namespace mldist::nn
