#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mldist::nn {

namespace {
constexpr char kMagic[4] = {'N', 'N', 'B', '1'};
}

void save_params(Sequential& model, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const auto params = model.params();
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const std::uint64_t size = p.size;
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(p.value),
              static_cast<std::streamsize>(size * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_params: stream write failed");
}

void load_params(Sequential& model, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic");
  }
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = model.params();
  if (!in || count != params.size()) {
    throw std::runtime_error("load_params: tensor count mismatch");
  }
  for (const auto& p : params) {
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != p.size) {
      throw std::runtime_error("load_params: tensor shape mismatch");
    }
    in.read(reinterpret_cast<char*>(p.value),
            static_cast<std::streamsize>(size * sizeof(float)));
    if (!in) throw std::runtime_error("load_params: truncated stream");
  }
}

void save_params(Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  save_params(model, out);
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  load_params(model, in);
}

}  // namespace mldist::nn
