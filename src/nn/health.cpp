#include "nn/health.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace mldist::nn {

const char* to_string(HealthIssue issue) {
  switch (issue) {
    case HealthIssue::kNone: return "none";
    case HealthIssue::kNonFiniteLoss: return "non-finite loss";
    case HealthIssue::kNonFiniteWeight: return "non-finite weight";
    case HealthIssue::kLossExplosion: return "loss explosion";
    case HealthIssue::kGradientBlowup: return "gradient blowup";
  }
  return "unknown";
}

namespace {
std::string describe(HealthIssue issue, int epoch, double value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "training diverged at epoch %d: %s (%g)",
                epoch, to_string(issue), value);
  return buf;
}
}  // namespace

TrainingDiverged::TrainingDiverged(HealthIssue issue, int epoch, double value)
    : std::runtime_error(describe(issue, epoch, value)),
      issue_(issue),
      epoch_(epoch),
      value_(value) {}

void HealthMonitor::check_batch(int epoch, double batch_loss,
                                double grad_norm) {
  if (!std::isfinite(batch_loss)) {
    throw TrainingDiverged(HealthIssue::kNonFiniteLoss, epoch, batch_loss);
  }
  if (!std::isfinite(grad_norm) || grad_norm > options_.grad_norm_limit) {
    throw TrainingDiverged(HealthIssue::kGradientBlowup, epoch, grad_norm);
  }
}

void HealthMonitor::check_epoch(int epoch, double train_loss,
                                const std::vector<ParamView>& params) {
  if (!std::isfinite(train_loss)) {
    throw TrainingDiverged(HealthIssue::kNonFiniteLoss, epoch, train_loss);
  }
  if (!recent_losses_.empty()) {
    const double baseline =
        std::accumulate(recent_losses_.begin(), recent_losses_.end(), 0.0) /
        static_cast<double>(recent_losses_.size());
    if (baseline > 0.0 && train_loss > options_.loss_explosion_factor * baseline) {
      throw TrainingDiverged(HealthIssue::kLossExplosion, epoch, train_loss);
    }
  }
  if (options_.check_weights) {
    for (const auto& p : params) {
      for (std::size_t i = 0; i < p.size; ++i) {
        if (!std::isfinite(p.value[i])) {
          throw TrainingDiverged(HealthIssue::kNonFiniteWeight, epoch,
                                 static_cast<double>(p.value[i]));
        }
      }
    }
  }
  recent_losses_.push_back(train_loss);
  if (recent_losses_.size() > options_.baseline_window) {
    recent_losses_.erase(recent_losses_.begin());
  }
}

}  // namespace mldist::nn
