#include "nn/conv1d.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

namespace mldist::nn {

Conv1D::Conv1D(std::size_t length, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel,
               util::Xoshiro256& rng)
    : length_(length), cin_(in_channels), cout_(out_channels), kernel_(kernel),
      w_(kernel * in_channels, out_channels), b_(out_channels, 0.0f),
      dw_(kernel * in_channels, out_channels), db_(out_channels, 0.0f) {
  if (kernel % 2 == 0) {
    throw std::invalid_argument("Conv1D: kernel must be odd for same padding");
  }
  const float limit = std::sqrt(
      6.0f / static_cast<float>(kernel * in_channels + kernel * out_channels));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.data()[i] = (2.0f * static_cast<float>(rng.next_double()) - 1.0f) * limit;
  }
}

Mat Conv1D::im2col(const Mat& x) const {
  const std::size_t batch = x.rows();
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  // Zero-filled rows give "same" padding for free; padded columns feed
  // fma(0, w, acc) steps that leave the accumulator bit-exact, so the GEMM
  // matches the window-skipping loop it replaces.
  Mat patches(batch * length_, kernel_ * cin_);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xr = x.row(n);
    for (std::size_t p = 0; p < length_; ++p) {
      float* pr = patches.row(n * length_ + p);
      for (std::size_t k = 0; k < kernel_; ++k) {
        const std::ptrdiff_t q =
            static_cast<std::ptrdiff_t>(p) + static_cast<std::ptrdiff_t>(k) - half;
        if (q < 0 || q >= static_cast<std::ptrdiff_t>(length_)) continue;
        std::memcpy(pr + k * cin_, xr + static_cast<std::size_t>(q) * cin_,
                    cin_ * sizeof(float));
      }
    }
  }
  return patches;
}

Mat Conv1D::forward(const Mat& x, bool training) {
  if (x.cols() != length_ * cin_) {
    throw std::invalid_argument("Conv1D: input width mismatch");
  }
  const std::size_t batch = x.rows();
  Mat patches = im2col(x);
  // (B*L, kernel*cin) x (kernel*cin, cout) with the bias fused; the result
  // is row (n*L + p) = output position p of sample n, which is exactly the
  // position-major sample layout, so the reshape is a straight copy.
  Mat flat;
  matmul_bias(patches, w_, b_, flat);
  Mat y(batch, length_ * cout_);
  std::memcpy(y.data(), flat.data(), flat.size() * sizeof(float));
  if (training) patches_ = std::move(patches);
  return y;
}

Mat Conv1D::backward(const Mat& grad_out) {
  const std::size_t batch = grad_out.rows();
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* gr = grad_out.row(n);
    for (std::size_t p = 0; p < length_; ++p) {
      const float* gp = gr + p * cout_;
      for (std::size_t o = 0; o < cout_; ++o) db_[o] += gp[o];
    }
  }
  // grad_out rows are position-major, so its data block is already the
  // (B*L, cout) matrix the GEMMs need.
  Mat grad_r(batch * length_, cout_);
  std::memcpy(grad_r.data(), grad_out.data(), grad_r.size() * sizeof(float));
  Mat dw_batch;
  matmul_at_b(patches_, grad_r, dw_batch);
  for (std::size_t i = 0; i < dw_.size(); ++i) dw_.data()[i] += dw_batch.data()[i];
  // dpatches = grad_r * W^T, scattered back through the window map
  // (p-outer, k-inner, matching the original accumulation order into dx).
  Mat dpatches;
  matmul_a_bt(grad_r, w_, dpatches);
  Mat dx(batch, length_ * cin_);
  for (std::size_t n = 0; n < batch; ++n) {
    float* dxr = dx.row(n);
    for (std::size_t p = 0; p < length_; ++p) {
      const float* dpr = dpatches.row(n * length_ + p);
      for (std::size_t k = 0; k < kernel_; ++k) {
        const std::ptrdiff_t q =
            static_cast<std::ptrdiff_t>(p) + static_cast<std::ptrdiff_t>(k) - half;
        if (q < 0 || q >= static_cast<std::ptrdiff_t>(length_)) continue;
        float* dxq = dxr + static_cast<std::size_t>(q) * cin_;
        const float* dpk = dpr + k * cin_;
        for (std::size_t c = 0; c < cin_; ++c) dxq[c] += dpk[c];
      }
    }
  }
  return dx;
}

std::vector<ParamView> Conv1D::params() {
  return {{w_.data(), dw_.data(), w_.size()},
          {b_.data(), db_.data(), b_.size()}};
}

std::string Conv1D::name() const {
  return "conv1d(" + std::to_string(cin_) + "->" + std::to_string(cout_) +
         ",k=" + std::to_string(kernel_) + ")";
}

std::size_t Conv1D::output_size(std::size_t input_size) const {
  if (input_size != length_ * cin_) {
    throw std::invalid_argument("Conv1D: input width mismatch");
  }
  return length_ * cout_;
}

Mat GlobalMaxPool1D::forward(const Mat& x, bool training) {
  if (x.cols() != length_ * channels_) {
    throw std::invalid_argument("GlobalMaxPool1D: input width mismatch");
  }
  const std::size_t batch = x.rows();
  Mat y(batch, channels_);
  // Inference-mode forward must stay free of member writes: batched
  // evaluate/predict runs it concurrently on a shared model.
  if (training) {
    batch_ = batch;
    argmax_.assign(batch_ * channels_, 0);
  }
  for (std::size_t n = 0; n < batch; ++n) {
    const float* xr = x.row(n);
    float* yr = y.row(n);
    for (std::size_t c = 0; c < channels_; ++c) {
      float best = -std::numeric_limits<float>::infinity();
      std::size_t best_p = 0;
      for (std::size_t p = 0; p < length_; ++p) {
        const float v = xr[p * channels_ + c];
        if (v > best) {
          best = v;
          best_p = p;
        }
      }
      yr[c] = best;
      if (training) argmax_[n * channels_ + c] = best_p;
    }
  }
  return y;
}

Mat GlobalMaxPool1D::backward(const Mat& grad_out) {
  Mat dx(batch_, length_ * channels_);
  for (std::size_t n = 0; n < batch_; ++n) {
    const float* gr = grad_out.row(n);
    float* dxr = dx.row(n);
    for (std::size_t c = 0; c < channels_; ++c) {
      dxr[argmax_[n * channels_ + c] * channels_ + c] = gr[c];
    }
  }
  return dx;
}

std::size_t GlobalMaxPool1D::output_size(std::size_t input_size) const {
  if (input_size != length_ * channels_) {
    throw std::invalid_argument("GlobalMaxPool1D: input width mismatch");
  }
  return channels_;
}

}  // namespace mldist::nn
