// LSTM layer with full backpropagation-through-time.
//
// A sample row of width T*F is read as T timesteps of F features
// (position-major, like Conv1D).  The layer returns the final hidden state
// (B x H), which the Table-3 LSTM architectures feed into dense layers.
// Gate order is (input, forget, candidate, output); the forget-gate bias is
// initialised to 1, matching Keras' unit_forget_bias default.
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class LSTM : public Layer {
 public:
  LSTM(std::size_t timesteps, std::size_t features, std::size_t hidden,
       util::Xoshiro256& rng);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override;
  std::size_t input_size() const override { return t_ * f_; }

 private:
  std::size_t t_;
  std::size_t f_;
  std::size_t h_;
  Mat wx_;                // F x 4H
  Mat wh_;                // H x 4H
  std::vector<float> b_;  // 4H
  Mat dwx_;
  Mat dwh_;
  std::vector<float> db_;

  // Per-batch caches for BPTT (index t in [0, T)).
  Mat x_cache_;
  std::vector<Mat> gates_;   // activated (i, f, g, o), each B x 4H
  std::vector<Mat> c_;       // cell states, B x H, c_[t]
  std::vector<Mat> h_cache_; // hidden states, h_cache_[t] = h after step t
};

}  // namespace mldist::nn
