#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace mldist::nn {

Dense::Dense(std::size_t in, std::size_t out, util::Xoshiro256& rng)
    : in_(in), out_(out), w_(in, out), b_(out, 0.0f), dw_(in, out),
      db_(out, 0.0f) {
  // Glorot uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
  const float limit =
      std::sqrt(6.0f / static_cast<float>(in + out));
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.data()[i] = (2.0f * static_cast<float>(rng.next_double()) - 1.0f) * limit;
  }
}

Mat Dense::forward(const Mat& x, bool training) {
  if (x.cols() != in_) {
    throw std::invalid_argument("Dense: input width mismatch");
  }
  Mat y;
  matmul_bias(x, w_, b_, y);
  if (training) x_cache_ = x;
  return y;
}

Mat Dense::backward(const Mat& grad_out) {
  Mat dw_batch;
  matmul_at_b(x_cache_, grad_out, dw_batch);
  for (std::size_t i = 0; i < dw_.size(); ++i) dw_.data()[i] += dw_batch.data()[i];
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    const float* g = grad_out.row(r);
    for (std::size_t j = 0; j < out_; ++j) db_[j] += g[j];
  }
  Mat dx;
  matmul_a_bt(grad_out, w_, dx);
  return dx;
}

std::vector<ParamView> Dense::params() {
  return {{w_.data(), dw_.data(), w_.size()},
          {b_.data(), db_.data(), b_.size()}};
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

std::size_t Dense::output_size(std::size_t input_size) const {
  if (input_size != in_) {
    throw std::invalid_argument("Dense: input width mismatch");
  }
  return out_;
}

}  // namespace mldist::nn
