// Softmax + categorical cross-entropy, fused for numerical stability.
// All models in the paper end with a softmax layer; keeping it inside the
// loss gives the well-conditioned gradient (softmax - onehot) / batch.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/mat.hpp"

namespace mldist::nn {

struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy over the batch
  double accuracy = 0.0;  ///< fraction of argmax hits
  Mat dlogits;            ///< gradient w.r.t. the logits
  Mat probs;              ///< softmax probabilities (batch x classes)
};

/// Evaluate softmax cross-entropy of `logits` (batch x classes) against the
/// integer `labels`.  `compute_grad` may be disabled for pure evaluation.
LossResult softmax_cross_entropy(const Mat& logits,
                                 const std::vector<int>& labels,
                                 bool compute_grad = true);

/// Row-wise softmax (exposed for prediction probabilities).
Mat softmax(const Mat& logits);

/// Argmax class per row.
std::vector<int> argmax_rows(const Mat& m);

}  // namespace mldist::nn
