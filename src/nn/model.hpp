// Sequential model container with a Keras-like fit/evaluate interface.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/health.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace mldist::util {
class ThreadPool;
}

namespace mldist::nn {

/// A labelled classification data set: one sample per row of X, integer
/// class per entry of y.
struct Dataset {
  Mat x;
  std::vector<int> y;

  std::size_t size() const { return x.rows(); }
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  std::optional<double> val_loss;      ///< empty when no validation set
  std::optional<double> val_accuracy;  ///< empty when no validation set
  /// Largest mini-batch gradient L2 norm of the epoch; only measured when a
  /// HealthMonitor is attached (0 otherwise).
  double grad_norm = 0.0;
  double seconds = 0.0;        ///< wall time of this epoch (incl. validation)
};

struct FitOptions {
  int epochs = 5;
  std::size_t batch_size = 128;
  bool shuffle = true;
  std::uint64_t shuffle_seed = 0x5eedULL;
  const Dataset* validation = nullptr;  ///< optional held-out set
  /// Numeric-health guard (see nn/health.hpp): when set, fit checks every
  /// mini-batch loss / gradient norm and every epoch's loss and weights,
  /// throwing TrainingDiverged on the first failure.  Non-owning; the
  /// monitor keeps its rolling baseline across the whole fit call.
  HealthMonitor* health = nullptr;
  /// Called after every epoch (e.g. to print progress); may be empty.
  std::function<void(const EpochStats&)> on_epoch;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Forward pass through all layers, producing logits.
  Mat forward(const Mat& x, bool training = false);

  /// Softmax probabilities for a batch.
  Mat predict_proba(const Mat& x);

  /// Argmax class predictions.  Rows are scored in fixed `batch_size`
  /// slices fanned out over `pool` (nullptr = the process-wide pool); each
  /// row's logits are independent of its batch, so the predictions are
  /// bitwise identical for any worker count.
  std::vector<int> predict(const Mat& x, std::size_t batch_size = 512,
                           util::ThreadPool* pool = nullptr);

  /// Mini-batch training with softmax cross-entropy.  Returns the stats of
  /// the final epoch.  With options.health set, throws nn::TrainingDiverged
  /// as soon as a numeric-health check fails (gradients may be left
  /// half-accumulated; call zero_grad() before reusing the model).
  EpochStats fit(const Dataset& train, Optimizer& opt, const FitOptions& options);

  /// Clear all accumulated parameter gradients (e.g. after an aborted fit).
  void zero_grad();

  /// Loss and accuracy over a data set.  Independent batches are scored
  /// concurrently on `pool` (nullptr = the process-wide pool) and reduced
  /// in batch order, so the result does not depend on the worker count.
  EvalResult evaluate(const Dataset& data, std::size_t batch_size = 512,
                      util::ThreadPool* pool = nullptr);

  /// All trainable parameters, in layer order.
  std::vector<ParamView> params();
  std::size_t param_count();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// One-line structural summary, e.g. "dense(128->1024) relu dense(...)".
  std::string summary();

 private:
  /// Per-layer observability handles, filled in add() (the cold path) so
  /// the forward/backward hot paths never do a metric-name lookup.  Metric
  /// names are "nn.layer.<i>.<kind>.{forward,backward}_ns" where <kind> is
  /// the layer name truncated at '(' — shape-free so the registered set
  /// stays bounded no matter how many architectures a process builds.
  struct LayerObs {
    std::size_t forward_ns = 0;   ///< obs::MetricId of the forward counter
    std::size_t backward_ns = 0;  ///< obs::MetricId of the backward counter
    std::string span_name;        ///< precomputed trace span name
  };

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<LayerObs> layer_obs_;  ///< parallel to layers_
};

}  // namespace mldist::nn
