// Sequential model container with a Keras-like fit/evaluate interface.
//
// Inference (forward with training=false, predict, evaluate) executes
// through the graph IR (nn/ir/): the layer stack is lowered once into an
// ir::Graph, the configured pass pipeline optimises it, and an
// ir::Executor with a reusable buffer arena runs it.  The compiled graph
// is cached per (dispatch backend, pipeline) and rebuilt lazily; training
// keeps the layer-by-layer path because backward needs per-layer caches.
// Both paths are bitwise identical (tests/kernel_equiv_test.cpp and
// tests/ir_test.cpp, label "ir").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/health.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace mldist::util {
class ThreadPool;
}

namespace mldist::nn {

/// A labelled classification data set: one sample per row of X, integer
/// class per entry of y.
struct Dataset {
  Mat x;
  std::vector<int> y;

  std::size_t size() const { return x.rows(); }
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  std::optional<double> val_loss;      ///< empty when no validation set
  std::optional<double> val_accuracy;  ///< empty when no validation set
  /// Largest mini-batch gradient L2 norm of the epoch; only measured when a
  /// HealthMonitor is attached (0 otherwise).
  double grad_norm = 0.0;
  double seconds = 0.0;        ///< wall time of this epoch (incl. validation)
};

struct FitOptions {
  int epochs = 5;
  std::size_t batch_size = 128;
  bool shuffle = true;
  std::uint64_t shuffle_seed = 0x5eedULL;
  const Dataset* validation = nullptr;  ///< optional held-out set
  /// Numeric-health guard (see nn/health.hpp): when set, fit checks every
  /// mini-batch loss / gradient norm and every epoch's loss and weights,
  /// throwing TrainingDiverged on the first failure.  Non-owning; the
  /// monitor keeps its rolling baseline across the whole fit call.
  HealthMonitor* health = nullptr;
  /// Called after every epoch (e.g. to print progress); may be empty.
  std::function<void(const EpochStats&)> on_epoch;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

class Sequential {
 public:
  Sequential();
  ~Sequential();
  Sequential(Sequential&&) noexcept;
  Sequential& operator=(Sequential&&) noexcept;

  /// Append a layer; returns *this for chaining.  Invalidates any compiled
  /// inference graph.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Forward pass through all layers, producing logits.  Inference runs the
  /// compiled IR graph; training runs the layer stack (backward needs the
  /// per-layer caches).  The two are bitwise identical.
  Mat forward(const Mat& x, bool training = false);

  /// Layer-by-layer inference forward, bypassing the IR entirely.  This is
  /// the specification path the IR executor is equivalence-tested against;
  /// it applies no fusion of any kind.
  Mat forward_reference(const Mat& x);

  /// Softmax probabilities for a batch.
  Mat predict_proba(const Mat& x);

  /// Argmax class predictions.  Rows are scored in fixed `batch_size`
  /// slices fanned out over `pool` (nullptr = the process-wide pool); each
  /// row's logits are independent of its batch, so the predictions are
  /// bitwise identical for any worker count.
  std::vector<int> predict(const Mat& x, std::size_t batch_size = 512,
                           util::ThreadPool* pool = nullptr);

  /// Mini-batch training with softmax cross-entropy.  Returns the stats of
  /// the final epoch.  With options.health set, throws nn::TrainingDiverged
  /// as soon as a numeric-health check fails (gradients may be left
  /// half-accumulated; call zero_grad() before reusing the model).
  EpochStats fit(const Dataset& train, Optimizer& opt, const FitOptions& options);

  /// Clear all accumulated parameter gradients (e.g. after an aborted fit).
  void zero_grad();

  /// Loss and accuracy over a data set.  Independent batches are scored
  /// concurrently on `pool` (nullptr = the process-wide pool) and reduced
  /// in batch order, so the result does not depend on the worker count.
  EvalResult evaluate(const Dataset& data, std::size_t batch_size = 512,
                      util::ThreadPool* pool = nullptr);

  /// All trainable parameters, in layer order.
  std::vector<ParamView> params();
  std::size_t param_count();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// One-line structural summary, e.g. "dense(128->1024) relu dense(...)".
  std::string summary();

  /// Replace the IR optimisation pipeline (names as understood by
  /// ir::PassManager; throws std::invalid_argument on unknown names) and
  /// drop any compiled graph.  Intended for tests, benches, and --passes.
  void set_pipeline(std::vector<std::string> passes);
  std::vector<std::string> pipeline() const;

  /// CRC-32 of the lowered (pre-optimisation) inference graph: op kinds,
  /// edges, and shapes.  Stable across pass pipelines and dispatch
  /// backends; save_params stamps it so parameters cannot load into a
  /// structurally different model.
  std::uint32_t topology_hash();

  /// Text rendering of the optimised inference graph (--dump-ir output),
  /// lowered and optimised with the current pipeline but without touching
  /// the compiled-graph cache.
  std::string dump_ir();

 private:
  /// Per-layer observability handles, filled in add() (the cold path) so
  /// the forward/backward hot paths never do a metric-name lookup.  Metric
  /// names are "nn.layer.<i>.<kind>.{forward,backward}_ns" where <kind> is
  /// the layer name truncated at '(' — shape-free so the registered set
  /// stays bounded no matter how many architectures a process builds.
  struct LayerObs {
    std::size_t forward_ns = 0;   ///< obs::MetricId of the forward counter
    std::size_t backward_ns = 0;  ///< obs::MetricId of the backward counter
    std::string span_name;        ///< precomputed trace span name
  };

  /// Compiled-inference state (mutex, cached ir::Graph, executor pool);
  /// defined in model.cpp so this header stays free of the IR headers.
  struct IrState;

  Mat forward_ir(const Mat& x);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<LayerObs> layer_obs_;  ///< parallel to layers_
  std::unique_ptr<IrState> ir_;
};

}  // namespace mldist::nn
