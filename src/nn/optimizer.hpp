// Optimisers.  The paper trains with Adam (Kingma & Ba) at Keras defaults:
// lr 1e-3, beta1 0.9, beta2 0.999, eps 1e-7.  Plain SGD is provided as the
// ablation baseline.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace mldist::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Register the parameters to optimise (must be called once, before step).
  virtual void attach(const std::vector<ParamView>& params) = 0;
  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step() = 0;
};

class SGD : public Optimizer {
 public:
  explicit SGD(float lr = 0.01f) : lr_(lr) {}
  void attach(const std::vector<ParamView>& params) override { params_ = params; }
  void step() override;

 private:
  float lr_;
  std::vector<ParamView> params_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-7f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void attach(const std::vector<ParamView>& params) override;
  void step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long t_ = 0;
  std::vector<ParamView> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace mldist::nn
