#include "nn/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <utility>

#include "kernels/dispatch.hpp"
#include "nn/ir/executor.hpp"
#include "nn/ir/graph.hpp"
#include "nn/ir/pass.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::nn {

/// Compiled-inference state.  The graph is cached per dispatch backend (the
/// lower-conv pass bakes a per-backend kernel plan into it) and per
/// pipeline; executors are pooled because they are single-use-at-a-time
/// (their buffer arena is stateful) while predict/evaluate fan batches out
/// across the thread pool.  The graph is held through shared_ptr so an
/// executor mid-run survives a concurrent recompile.
struct Sequential::IrState {
  std::mutex mu;
  std::vector<std::string> pipeline = ir::PassManager::default_pipeline();
  bool compiled = false;
  kernels::Impl impl = kernels::Impl::kReference;
  std::shared_ptr<const ir::Graph> graph;
  std::vector<std::unique_ptr<ir::Executor>> pool;
};

Sequential::Sequential() : ir_(std::make_unique<IrState>()) {}
Sequential::~Sequential() = default;
Sequential::Sequential(Sequential&&) noexcept = default;
Sequential& Sequential::operator=(Sequential&&) noexcept = default;

namespace {

/// Deterministic fit/eval/predict tallies (sample and batch counts are fixed
/// by the data and options, never by the worker count).
struct ModelMetrics {
  obs::MetricId fit_epochs;
  obs::MetricId fit_batches;
  obs::MetricId fit_samples;
  obs::MetricId eval_batches;
  obs::MetricId eval_rows;
  obs::MetricId predict_rows;

  ModelMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    fit_epochs = reg.counter("nn.fit.epochs");
    fit_batches = reg.counter("nn.fit.batches");
    fit_samples = reg.counter("nn.fit.samples");
    eval_batches = reg.counter("nn.evaluate.batches");
    eval_rows = reg.counter("nn.evaluate.rows");
    predict_rows = reg.counter("nn.predict.rows");
  }
};

const ModelMetrics& model_metrics() {
  static const ModelMetrics metrics;
  return metrics;
}

}  // namespace

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  // Shape-free kind ("dense(128->1024)" -> "dense") keeps the registered
  // name set bounded across every architecture a process ever builds.
  const std::string full = layers_.back()->name();
  const std::string kind = full.substr(0, full.find('('));
  const std::string base =
      "nn.layer." + std::to_string(layers_.size() - 1) + "." + kind;
  LayerObs o;
  o.forward_ns = obs::MetricsRegistry::global().counter(base + ".forward_ns");
  o.backward_ns =
      obs::MetricsRegistry::global().counter(base + ".backward_ns");
  o.span_name = base;
  layer_obs_.push_back(std::move(o));
  // The compiled graph references the old layer list by pointer; rebuild
  // lazily on the next inference call.
  std::lock_guard<std::mutex> lock(ir_->mu);
  ir_->compiled = false;
  ir_->graph.reset();
  ir_->pool.clear();
  return *this;
}

Mat Sequential::forward(const Mat& x, bool training) {
  if (!training) return forward_ir(x);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  Mat cur = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    obs::Span span(layer_obs_[i].span_name, "nn");
    const util::Timer layer_timer;
    cur = layers_[i]->forward(cur, /*training=*/true);
    reg.add(layer_obs_[i].forward_ns,
            static_cast<std::uint64_t>(
                std::max(0.0, layer_timer.seconds() * 1e9)));
  }
  return cur;
}

Mat Sequential::forward_reference(const Mat& x) {
  Mat cur = x;
  for (auto& l : layers_) cur = l->forward(cur, /*training=*/false);
  return cur;
}

Mat Sequential::forward_ir(const Mat& x) {
  const kernels::Impl impl = kernels::dispatch();
  std::shared_ptr<const ir::Graph> graph;
  std::unique_ptr<ir::Executor> ex;
  {
    std::lock_guard<std::mutex> lock(ir_->mu);
    if (!ir_->compiled || ir_->impl != impl) {
      obs::Span span("ir.compile", "nn");
      ir::Graph g = ir::Graph::lower(*this);
      ir::PassManager(ir_->pipeline).run(g);
      span.arg("nodes", static_cast<std::uint64_t>(g.nodes().size()));
      ir_->graph = std::make_shared<const ir::Graph>(std::move(g));
      ir_->impl = impl;
      ir_->compiled = true;
      ir_->pool.clear();  // built for the replaced graph
    }
    graph = ir_->graph;
    if (!ir_->pool.empty()) {
      ex = std::move(ir_->pool.back());
      ir_->pool.pop_back();
    }
  }
  if (!ex) ex = std::make_unique<ir::Executor>(graph);
  Mat y = ex->run(x);
  {
    std::lock_guard<std::mutex> lock(ir_->mu);
    // Return the executor (and its warm arena) unless a recompile raced us.
    if (&ex->graph() == ir_->graph.get()) ir_->pool.push_back(std::move(ex));
  }
  return y;
}

void Sequential::set_pipeline(std::vector<std::string> passes) {
  ir::PassManager validate(passes);  // throws on unknown pass names
  std::lock_guard<std::mutex> lock(ir_->mu);
  ir_->pipeline = std::move(passes);
  ir_->compiled = false;
  ir_->graph.reset();
  ir_->pool.clear();
}

std::vector<std::string> Sequential::pipeline() const {
  std::lock_guard<std::mutex> lock(ir_->mu);
  return ir_->pipeline;
}

std::uint32_t Sequential::topology_hash() {
  return ir::Graph::lower(*this).topology_hash();
}

std::string Sequential::dump_ir() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(ir_->mu);
    names = ir_->pipeline;
  }
  ir::Graph g = ir::Graph::lower(*this);
  ir::PassManager(names).run(g);
  return g.to_text();
}

Mat Sequential::predict_proba(const Mat& x) { return softmax(forward(x)); }

namespace {
/// Copy rows [begin, end) of `x` into a fresh batch matrix.
Mat slice_rows(const Mat& x, std::size_t begin, std::size_t end) {
  Mat out(end - begin, x.cols());
  std::copy(x.row(begin), x.row(begin) + (end - begin) * x.cols(), out.data());
  return out;
}

util::ThreadPool& pool_or_global(util::ThreadPool* pool) {
  return pool != nullptr ? *pool : util::ThreadPool::global();
}
}  // namespace

std::vector<int> Sequential::predict(const Mat& x, std::size_t batch_size,
                                     util::ThreadPool* pool) {
  const std::size_t n = x.rows();
  obs::Span span("predict", "nn");
  span.arg("rows", static_cast<std::uint64_t>(n));
  obs::MetricsRegistry::global().add(model_metrics().predict_rows, n);
  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  const std::size_t batches = (n + bs - 1) / bs;
  if (batches <= 1) return argmax_rows(forward(x));

  std::vector<int> out(n);
  pool_or_global(pool).parallel_for(batches, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(n, begin + bs);
      const std::vector<int> pred = argmax_rows(forward(slice_rows(x, begin, end)));
      std::copy(pred.begin(), pred.end(), out.begin() + static_cast<std::ptrdiff_t>(begin));
    }
  });
  return out;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (auto& l : layers_) {
    for (const auto& p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.size;
  return n;
}

void Sequential::zero_grad() {
  for (const auto& p : params()) std::fill(p.grad, p.grad + p.size, 0.0f);
}

std::string Sequential::summary() {
  std::string s;
  for (auto& l : layers_) {
    if (!s.empty()) s += " ";
    s += l->name();
  }
  return s;
}

namespace {
Mat gather_rows(const Mat& x, const std::vector<std::size_t>& idx,
                std::size_t begin, std::size_t end) {
  Mat out(end - begin, x.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const float* src = x.row(idx[i]);
    float* dst = out.row(i - begin);
    std::copy(src, src + x.cols(), dst);
  }
  return out;
}

double grad_l2_norm(const std::vector<ParamView>& params) {
  double sum = 0.0;
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      const double g = p.grad[i];
      sum += g * g;
    }
  }
  return std::sqrt(sum);
}
}  // namespace

EpochStats Sequential::fit(const Dataset& train, Optimizer& opt,
                           const FitOptions& options) {
  assert(train.x.rows() == train.y.size());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const ModelMetrics& metrics = model_metrics();
  obs::Span fit_span("fit", "nn");
  fit_span.arg("epochs", options.epochs)
      .arg("batch_size", static_cast<std::uint64_t>(options.batch_size))
      .arg("samples", static_cast<std::uint64_t>(train.size()));
  const std::vector<ParamView> param_views = params();
  opt.attach(param_views);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(options.shuffle_seed);

  EpochStats last;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::Span epoch_span("fit.epoch", "nn");
    epoch_span.arg("epoch", epoch + 1);
    reg.add(metrics.fit_epochs);
    const util::Timer epoch_timer;
    if (options.shuffle) std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    double max_grad_norm = 0.0;
    std::size_t seen = 0;
    for (std::size_t begin = 0; begin < train.size();
         begin += options.batch_size) {
      const std::size_t end = std::min(begin + options.batch_size, train.size());
      const Mat xb = gather_rows(train.x, order, begin, end);
      std::vector<int> yb(end - begin);
      for (std::size_t i = begin; i < end; ++i) yb[i - begin] = train.y[order[i]];

      reg.add(metrics.fit_batches);
      reg.add(metrics.fit_samples, end - begin);
      const Mat logits = forward(xb, /*training=*/true);
      LossResult lr = softmax_cross_entropy(logits, yb);
      Mat grad = std::move(lr.dlogits);
      for (std::size_t li = layers_.size(); li-- > 0;) {
        const util::Timer bwd_timer;
        grad = layers_[li]->backward(grad);
        reg.add(layer_obs_[li].backward_ns,
                static_cast<std::uint64_t>(
                    std::max(0.0, bwd_timer.seconds() * 1e9)));
      }
      if (options.health != nullptr) {
        // Guard before the step so a poisoned update never reaches the
        // parameters; the caller rolls back and zero_grad()s on throw.
        const double gnorm = grad_l2_norm(param_views);
        max_grad_norm = std::max(max_grad_norm, gnorm);
        options.health->check_batch(epoch + 1, lr.loss, gnorm);
      }
      opt.step();

      loss_sum += lr.loss * static_cast<double>(end - begin);
      acc_sum += lr.accuracy * static_cast<double>(end - begin);
      seen += end - begin;
    }

    last.epoch = epoch + 1;
    last.train_loss = loss_sum / static_cast<double>(seen);
    last.train_accuracy = acc_sum / static_cast<double>(seen);
    last.grad_norm = max_grad_norm;
    if (options.validation != nullptr) {
      const EvalResult v = evaluate(*options.validation);
      last.val_loss = v.loss;
      last.val_accuracy = v.accuracy;
    } else {
      last.val_loss.reset();
      last.val_accuracy.reset();
    }
    if (options.health != nullptr) {
      options.health->check_epoch(epoch + 1, last.train_loss, param_views);
    }
    last.seconds = epoch_timer.seconds();
    epoch_span.arg("train_loss", last.train_loss)
        .arg("train_accuracy", last.train_accuracy);
    if (options.on_epoch) options.on_epoch(last);
  }
  return last;
}

EvalResult Sequential::evaluate(const Dataset& data, std::size_t batch_size,
                                util::ThreadPool* pool) {
  assert(data.x.rows() == data.y.size());
  const std::size_t n = data.size();
  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  const std::size_t batches = (n + bs - 1) / bs;
  obs::Span span("evaluate", "nn");
  span.arg("rows", static_cast<std::uint64_t>(n));
  obs::MetricsRegistry::global().add(model_metrics().eval_rows, n);
  obs::MetricsRegistry::global().add(model_metrics().eval_batches, batches);
  // Per-batch partials are reduced in batch order below, so the result is
  // bitwise identical to a serial pass regardless of the worker count.
  std::vector<double> batch_loss(batches, 0.0);
  std::vector<std::size_t> batch_hits(batches, 0);
  pool_or_global(pool).parallel_for(batches, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(n, begin + bs);
      const std::vector<int> yb(
          data.y.begin() + static_cast<std::ptrdiff_t>(begin),
          data.y.begin() + static_cast<std::ptrdiff_t>(end));
      const Mat logits = forward(slice_rows(data.x, begin, end), /*training=*/false);
      const LossResult lr =
          softmax_cross_entropy(logits, yb, /*compute_grad=*/false);
      batch_loss[b] = lr.loss * static_cast<double>(end - begin);
      batch_hits[b] = static_cast<std::size_t>(
          std::lround(lr.accuracy * static_cast<double>(end - begin)));
    }
  });
  double loss_sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    loss_sum += batch_loss[b];
    hits += batch_hits[b];
  }
  EvalResult out;
  if (n > 0) {
    out.loss = loss_sum / static_cast<double>(n);
    out.accuracy = static_cast<double>(hits) / static_cast<double>(n);
  }
  return out;
}

}  // namespace mldist::nn
