#include "nn/model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Mat Sequential::forward(const Mat& x, bool training) {
  Mat cur = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // Inference-only fusion: collapse Dense + ReLU/LeakyReLU into one
    // fused-epilogue kernel call.  The epilogue applies the identical
    // per-element rewrite as the activation layer, so this is bitwise
    // equal to the unfused pair; training keeps the separate layers
    // because backward needs the activation's input cache.
    if (!training && i + 1 < layers_.size()) {
      if (auto* dense = dynamic_cast<Dense*>(layers_[i].get())) {
        Layer* next = layers_[i + 1].get();
        if (dynamic_cast<ReLU*>(next) != nullptr) {
          cur = dense->forward_fused(cur, kernels::Activation::kRelu, 0.0f);
          ++i;
          continue;
        }
        if (auto* leaky = dynamic_cast<LeakyReLU*>(next)) {
          cur = dense->forward_fused(cur, kernels::Activation::kLeakyRelu,
                                     leaky->alpha());
          ++i;
          continue;
        }
      }
    }
    cur = layers_[i]->forward(cur, training);
  }
  return cur;
}

Mat Sequential::predict_proba(const Mat& x) { return softmax(forward(x)); }

namespace {
/// Copy rows [begin, end) of `x` into a fresh batch matrix.
Mat slice_rows(const Mat& x, std::size_t begin, std::size_t end) {
  Mat out(end - begin, x.cols());
  std::copy(x.row(begin), x.row(begin) + (end - begin) * x.cols(), out.data());
  return out;
}

util::ThreadPool& pool_or_global(util::ThreadPool* pool) {
  return pool != nullptr ? *pool : util::ThreadPool::global();
}
}  // namespace

std::vector<int> Sequential::predict(const Mat& x, std::size_t batch_size,
                                     util::ThreadPool* pool) {
  const std::size_t n = x.rows();
  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  const std::size_t batches = (n + bs - 1) / bs;
  if (batches <= 1) return argmax_rows(forward(x));

  std::vector<int> out(n);
  pool_or_global(pool).parallel_for(batches, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(n, begin + bs);
      const std::vector<int> pred = argmax_rows(forward(slice_rows(x, begin, end)));
      std::copy(pred.begin(), pred.end(), out.begin() + static_cast<std::ptrdiff_t>(begin));
    }
  });
  return out;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (auto& l : layers_) {
    for (const auto& p : l->params()) out.push_back(p);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.size;
  return n;
}

void Sequential::zero_grad() {
  for (const auto& p : params()) std::fill(p.grad, p.grad + p.size, 0.0f);
}

std::string Sequential::summary() {
  std::string s;
  for (auto& l : layers_) {
    if (!s.empty()) s += " ";
    s += l->name();
  }
  return s;
}

namespace {
Mat gather_rows(const Mat& x, const std::vector<std::size_t>& idx,
                std::size_t begin, std::size_t end) {
  Mat out(end - begin, x.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const float* src = x.row(idx[i]);
    float* dst = out.row(i - begin);
    std::copy(src, src + x.cols(), dst);
  }
  return out;
}

double grad_l2_norm(const std::vector<ParamView>& params) {
  double sum = 0.0;
  for (const auto& p : params) {
    for (std::size_t i = 0; i < p.size; ++i) {
      const double g = p.grad[i];
      sum += g * g;
    }
  }
  return std::sqrt(sum);
}
}  // namespace

EpochStats Sequential::fit(const Dataset& train, Optimizer& opt,
                           const FitOptions& options) {
  assert(train.x.rows() == train.y.size());
  const std::vector<ParamView> param_views = params();
  opt.attach(param_views);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(options.shuffle_seed);

  EpochStats last;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const util::Timer epoch_timer;
    if (options.shuffle) std::shuffle(order.begin(), order.end(), rng);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    double max_grad_norm = 0.0;
    std::size_t seen = 0;
    for (std::size_t begin = 0; begin < train.size();
         begin += options.batch_size) {
      const std::size_t end = std::min(begin + options.batch_size, train.size());
      const Mat xb = gather_rows(train.x, order, begin, end);
      std::vector<int> yb(end - begin);
      for (std::size_t i = begin; i < end; ++i) yb[i - begin] = train.y[order[i]];

      const Mat logits = forward(xb, /*training=*/true);
      LossResult lr = softmax_cross_entropy(logits, yb);
      Mat grad = std::move(lr.dlogits);
      for (std::size_t li = layers_.size(); li-- > 0;) {
        grad = layers_[li]->backward(grad);
      }
      if (options.health != nullptr) {
        // Guard before the step so a poisoned update never reaches the
        // parameters; the caller rolls back and zero_grad()s on throw.
        const double gnorm = grad_l2_norm(param_views);
        max_grad_norm = std::max(max_grad_norm, gnorm);
        options.health->check_batch(epoch + 1, lr.loss, gnorm);
      }
      opt.step();

      loss_sum += lr.loss * static_cast<double>(end - begin);
      acc_sum += lr.accuracy * static_cast<double>(end - begin);
      seen += end - begin;
    }

    last.epoch = epoch + 1;
    last.train_loss = loss_sum / static_cast<double>(seen);
    last.train_accuracy = acc_sum / static_cast<double>(seen);
    last.grad_norm = max_grad_norm;
    if (options.validation != nullptr) {
      const EvalResult v = evaluate(*options.validation);
      last.val_loss = v.loss;
      last.val_accuracy = v.accuracy;
    } else {
      last.val_loss.reset();
      last.val_accuracy.reset();
    }
    if (options.health != nullptr) {
      options.health->check_epoch(epoch + 1, last.train_loss, param_views);
    }
    last.seconds = epoch_timer.seconds();
    if (options.on_epoch) options.on_epoch(last);
  }
  return last;
}

EvalResult Sequential::evaluate(const Dataset& data, std::size_t batch_size,
                                util::ThreadPool* pool) {
  assert(data.x.rows() == data.y.size());
  const std::size_t n = data.size();
  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  const std::size_t batches = (n + bs - 1) / bs;
  // Per-batch partials are reduced in batch order below, so the result is
  // bitwise identical to a serial pass regardless of the worker count.
  std::vector<double> batch_loss(batches, 0.0);
  std::vector<std::size_t> batch_hits(batches, 0);
  pool_or_global(pool).parallel_for(batches, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(n, begin + bs);
      const std::vector<int> yb(
          data.y.begin() + static_cast<std::ptrdiff_t>(begin),
          data.y.begin() + static_cast<std::ptrdiff_t>(end));
      const Mat logits = forward(slice_rows(data.x, begin, end), /*training=*/false);
      const LossResult lr =
          softmax_cross_entropy(logits, yb, /*compute_grad=*/false);
      batch_loss[b] = lr.loss * static_cast<double>(end - begin);
      batch_hits[b] = static_cast<std::size_t>(
          std::lround(lr.accuracy * static_cast<double>(end - begin)));
    }
  });
  double loss_sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    loss_sum += batch_loss[b];
    hits += batch_hits[b];
  }
  EvalResult out;
  if (n > 0) {
    out.loss = loss_sum / static_cast<double>(n);
    out.accuracy = static_cast<double>(hits) / static_cast<double>(n);
  }
  return out;
}

}  // namespace mldist::nn
