#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

namespace mldist::nn {

namespace {
float sigmoidf(float v) { return 1.0f / (1.0f + std::exp(-v)); }

/// Copy timestep t of a (B, T*F) batch into a contiguous (B, F) matrix.
Mat slice_timestep(const Mat& x, std::size_t t, std::size_t f) {
  Mat out(x.rows(), f);
  for (std::size_t n = 0; n < x.rows(); ++n) {
    const float* src = x.row(n) + t * f;
    float* dst = out.row(n);
    for (std::size_t j = 0; j < f; ++j) dst[j] = src[j];
  }
  return out;
}
}  // namespace

LSTM::LSTM(std::size_t timesteps, std::size_t features, std::size_t hidden,
           util::Xoshiro256& rng)
    : t_(timesteps), f_(features), h_(hidden), wx_(features, 4 * hidden),
      wh_(hidden, 4 * hidden), b_(4 * hidden, 0.0f), dwx_(features, 4 * hidden),
      dwh_(hidden, 4 * hidden), db_(4 * hidden, 0.0f) {
  const float lim_x = std::sqrt(6.0f / static_cast<float>(features + 4 * hidden));
  for (std::size_t i = 0; i < wx_.size(); ++i) {
    wx_.data()[i] = (2.0f * static_cast<float>(rng.next_double()) - 1.0f) * lim_x;
  }
  const float lim_h = std::sqrt(6.0f / static_cast<float>(hidden + 4 * hidden));
  for (std::size_t i = 0; i < wh_.size(); ++i) {
    wh_.data()[i] = (2.0f * static_cast<float>(rng.next_double()) - 1.0f) * lim_h;
  }
  for (std::size_t j = 0; j < h_; ++j) b_[h_ + j] = 1.0f;  // forget bias
}

Mat LSTM::forward(const Mat& x, bool training) {
  if (x.cols() != t_ * f_) {
    throw std::invalid_argument("LSTM: input width mismatch");
  }
  const std::size_t batch = x.rows();
  if (training) {
    x_cache_ = x;
    gates_.assign(t_, Mat());
    c_.assign(t_, Mat());
    h_cache_.assign(t_, Mat());
  }

  Mat h_prev(batch, h_);
  Mat c_prev(batch, h_);
  for (std::size_t step = 0; step < t_; ++step) {
    const Mat xt = slice_timestep(x, step, f_);
    // z = xt * wx + b with the bias fused into the GEMM epilogue; the
    // recurrent term stays a separate product + add so every element keeps
    // one well-defined summation chain regardless of kernel choice.
    Mat z;
    matmul_bias(xt, wx_, b_, z);
    Mat zh;
    matmul(h_prev, wh_, zh);
    for (std::size_t i = 0; i < z.size(); ++i) z.data()[i] += zh.data()[i];

    Mat h_new(batch, h_);
    Mat c_new(batch, h_);
    for (std::size_t n = 0; n < batch; ++n) {
      float* zr = z.row(n);
      const float* cp = c_prev.row(n);
      float* cn = c_new.row(n);
      float* hn = h_new.row(n);
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = sigmoidf(zr[j]);
        const float gf = sigmoidf(zr[h_ + j]);
        const float gg = std::tanh(zr[2 * h_ + j]);
        const float go = sigmoidf(zr[3 * h_ + j]);
        zr[j] = gi;            // overwrite z with activated gates for caching
        zr[h_ + j] = gf;
        zr[2 * h_ + j] = gg;
        zr[3 * h_ + j] = go;
        cn[j] = gf * cp[j] + gi * gg;
        hn[j] = go * std::tanh(cn[j]);
      }
    }
    if (training) {
      gates_[step] = z;
      c_[step] = c_new;
      h_cache_[step] = h_new;
    }
    h_prev = std::move(h_new);
    c_prev = std::move(c_new);
  }
  return h_prev;
}

Mat LSTM::backward(const Mat& grad_out) {
  const std::size_t batch = grad_out.rows();
  Mat dx(batch, t_ * f_);
  Mat dh = grad_out;
  Mat dc(batch, h_);

  for (std::size_t step = t_; step-- > 0;) {
    const Mat& gates = gates_[step];
    const Mat& c_now = c_[step];
    // Previous cell/hidden state (zeros before the first step).
    Mat c_prev(batch, h_);
    Mat h_prev(batch, h_);
    if (step > 0) {
      c_prev = c_[step - 1];
      h_prev = h_cache_[step - 1];
    }

    Mat dz(batch, 4 * h_);
    Mat dc_prev(batch, h_);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* g = gates.row(n);
      const float* cn = c_now.row(n);
      const float* cp = c_prev.row(n);
      const float* dhn = dh.row(n);
      const float* dcn = dc.row(n);
      float* dzn = dz.row(n);
      float* dcp = dc_prev.row(n);
      for (std::size_t j = 0; j < h_; ++j) {
        const float gi = g[j];
        const float gf = g[h_ + j];
        const float gg = g[2 * h_ + j];
        const float go = g[3 * h_ + j];
        const float tc = std::tanh(cn[j]);
        const float dct = dcn[j] + dhn[j] * go * (1.0f - tc * tc);
        dzn[j] = dct * gg * gi * (1.0f - gi);
        dzn[h_ + j] = dct * cp[j] * gf * (1.0f - gf);
        dzn[2 * h_ + j] = dct * gi * (1.0f - gg * gg);
        dzn[3 * h_ + j] = dhn[j] * tc * go * (1.0f - go);
        dcp[j] = dct * gf;
      }
    }

    const Mat xt = slice_timestep(x_cache_, step, f_);
    Mat dwx_batch;
    matmul_at_b(xt, dz, dwx_batch);
    for (std::size_t i = 0; i < dwx_.size(); ++i) {
      dwx_.data()[i] += dwx_batch.data()[i];
    }
    Mat dwh_batch;
    matmul_at_b(h_prev, dz, dwh_batch);
    for (std::size_t i = 0; i < dwh_.size(); ++i) {
      dwh_.data()[i] += dwh_batch.data()[i];
    }
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dzn = dz.row(n);
      for (std::size_t j = 0; j < 4 * h_; ++j) db_[j] += dzn[j];
    }

    Mat dxt;
    matmul_a_bt(dz, wx_, dxt);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = dxt.row(n);
      float* dst = dx.row(n) + step * f_;
      for (std::size_t j = 0; j < f_; ++j) dst[j] = src[j];
    }
    matmul_a_bt(dz, wh_, dh);
    dc = std::move(dc_prev);
  }
  return dx;
}

std::vector<ParamView> LSTM::params() {
  return {{wx_.data(), dwx_.data(), wx_.size()},
          {wh_.data(), dwh_.data(), wh_.size()},
          {b_.data(), db_.data(), b_.size()}};
}

std::string LSTM::name() const {
  return "lstm(T=" + std::to_string(t_) + ",F=" + std::to_string(f_) +
         ",H=" + std::to_string(h_) + ")";
}

std::size_t LSTM::output_size(std::size_t input_size) const {
  if (input_size != t_ * f_) {
    throw std::invalid_argument("LSTM: input width mismatch");
  }
  return h_;
}

}  // namespace mldist::nn
