#include "nn/dropout.hpp"

#include <stdexcept>

namespace mldist::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Mat Dropout::forward(const Mat& x, bool training) {
  if (!training || p_ == 0.0f) {
    if (training) {
      mask_ = Mat(x.rows(), x.cols());
      mask_.fill(1.0f);
    }
    return x;
  }
  const float scale = 1.0f / (1.0f - p_);
  mask_ = Mat(x.rows(), x.cols());
  Mat y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool keep = rng_.next_double() >= p_;
    mask_.data()[i] = keep ? scale : 0.0f;
    y.data()[i] *= mask_.data()[i];
  }
  return y;
}

Mat Dropout::backward(const Mat& grad_out) {
  Mat dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) dx.data()[i] *= mask_.data()[i];
  return dx;
}

std::string Dropout::name() const {
  return "dropout(p=" + std::to_string(p_) + ")";
}

}  // namespace mldist::nn
