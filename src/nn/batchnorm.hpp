// Batch normalisation over features (Ioffe & Szegedy), the building block
// of Gohr's residual distinguisher network (§2.3).  Training mode
// normalises with batch statistics and maintains running estimates;
// evaluation mode uses the running estimates.
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, float momentum = 0.9f,
                     float eps = 1e-5f);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override;

  const std::vector<float>& running_mean() const { return run_mean_; }
  const std::vector<float>& running_var() const { return run_var_; }
  const std::vector<float>& gamma() const { return gamma_; }
  const std::vector<float>& beta() const { return beta_; }
  float eps() const { return eps_; }
  std::size_t features() const { return features_; }
  std::size_t input_size() const override { return features_; }

 private:
  std::size_t features_;
  float momentum_;
  float eps_;
  std::vector<float> gamma_;
  std::vector<float> beta_;
  std::vector<float> dgamma_;
  std::vector<float> dbeta_;
  std::vector<float> run_mean_;
  std::vector<float> run_var_;

  // Per-batch caches for backward.
  Mat xhat_;
  std::vector<float> batch_var_;
};

}  // namespace mldist::nn
