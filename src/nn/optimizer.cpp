#include "nn/optimizer.hpp"

#include <cmath>

namespace mldist::nn {

void SGD::step() {
  for (auto& p : params_) {
    for (std::size_t i = 0; i < p.size; ++i) {
      p.value[i] -= lr_ * p.grad[i];
      p.grad[i] = 0.0f;
    }
  }
}

void Adam::attach(const std::vector<ParamView>& params) {
  params_ = params;
  m_.clear();
  v_.clear();
  for (const auto& p : params_) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
  t_ = 0;
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    auto& m = m_[k];
    auto& v = v_[k];
    for (std::size_t i = 0; i < p.size; ++i) {
      const float g = p.grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p.value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      p.grad[i] = 0.0f;
    }
  }
}

}  // namespace mldist::nn
