#include "nn/ir/pass.hpp"

#include <stdexcept>

#include "kernels/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::nn::ir {

namespace {

class ElideIdentityPass : public Pass {
 public:
  const char* name() const override { return "elide-identity"; }

  bool run(Graph& g) override {
    bool changed = false;
    auto& nodes = g.nodes();
    // Ascending id order resolves identity chains in one sweep: a later
    // identity's input was already redirected to the real producer.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node& n = nodes[i];
      if (n.dead || n.kind != OpKind::kIdentity || n.inputs.empty()) continue;
      g.replace_uses(static_cast<int>(i), n.inputs[0]);
      n.dead = true;
      changed = true;
    }
    if (changed) g.compact();
    return changed;
  }
};

class FuseBatchNormPass : public Pass {
 public:
  const char* name() const override { return "fuse-batchnorm"; }

  bool run(Graph& g) override {
    bool changed = false;
    auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node& n = nodes[i];
      if (n.dead || n.kind != OpKind::kBatchNorm || n.fused_act) continue;
      const int pid = n.inputs[0];
      Node& p = nodes[static_cast<std::size_t>(pid)];
      if (p.dead || p.fused_bn || p.fused_act) continue;
      if (p.kind != OpKind::kDense && p.kind != OpKind::kConv1D) continue;
      // A second consumer (e.g. a residual skip) reads the pre-BN value;
      // folding would change what it sees.
      if (g.consumer_count(pid) != 1) continue;
      p.norm = n.norm;
      p.fused_bn = true;
      g.replace_uses(static_cast<int>(i), pid);
      n.dead = true;
      changed = true;
    }
    if (changed) g.compact();
    return changed;
  }
};

class FuseActivationPass : public Pass {
 public:
  const char* name() const override { return "fuse-activation"; }

  bool run(Graph& g) override {
    bool changed = false;
    auto& nodes = g.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node& n = nodes[i];
      if (n.dead || n.kind != OpKind::kActivation) continue;
      if (n.act != kernels::Activation::kRelu &&
          n.act != kernels::Activation::kLeakyRelu) {
        continue;
      }
      const int pid = n.inputs[0];
      Node& p = nodes[static_cast<std::size_t>(pid)];
      if (p.dead || p.fused_act) continue;
      if (p.kind != OpKind::kDense && p.kind != OpKind::kConv1D &&
          p.kind != OpKind::kBatchNorm && p.kind != OpKind::kAdd) {
        continue;
      }
      if (g.consumer_count(pid) != 1) continue;
      p.act = n.act;
      p.alpha = n.alpha;
      p.fused_act = true;
      g.replace_uses(static_cast<int>(i), pid);
      n.dead = true;
      changed = true;
    }
    if (changed) g.compact();
    return changed;
  }
};

class LowerConvPass : public Pass {
 public:
  const char* name() const override { return "lower-conv"; }

  bool run(Graph& g) override {
    // Per-backend layout plan: the packing backends amortise per-sample
    // strided-GEMM calls well, so they skip the im2col materialisation;
    // the reference backend has no packing to feed, so one whole-batch
    // im2col GEMM minimises call overhead.  Both layouts are bitwise
    // identical, so the choice is pure performance policy.
    const kernels::Conv1DAlgo algo =
        kernels::dispatch() == kernels::Impl::kReference
            ? kernels::Conv1DAlgo::kIm2col
            : kernels::Conv1DAlgo::kDirect;
    bool changed = false;
    for (Node& n : g.nodes()) {
      if (n.dead || n.kind != OpKind::kConv1D) continue;
      if (n.conv_algo != algo) {
        n.conv_algo = algo;
        changed = true;
      }
    }
    return changed;
  }
};

class PlanExecPass : public Pass {
 public:
  const char* name() const override { return "plan-exec"; }

  bool run(Graph& g) override {
    auto& nodes = g.nodes();
    // Greedy liveness scan over the (topological) node order: a producer's
    // slot is released once its last consumer has run, but only after the
    // consumer claimed its own slot, so an op never writes the buffer it is
    // reading.
    std::vector<std::size_t> refs(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      refs[i] = g.consumer_count(static_cast<int>(i));
    }
    std::vector<int> free;
    std::size_t slot_count = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node& n = nodes[i];
      if (n.dead) continue;
      if (n.kind == OpKind::kInput) {
        n.slot = -1;  // reads the caller's batch directly
        continue;
      }
      if (!free.empty()) {
        n.slot = free.back();
        free.pop_back();
      } else {
        n.slot = static_cast<int>(slot_count++);
      }
      for (int in : n.inputs) {
        const Node& p = nodes[static_cast<std::size_t>(in)];
        if (p.slot < 0) continue;
        if (--refs[static_cast<std::size_t>(in)] == 0) free.push_back(p.slot);
      }
    }
    g.set_slot_count(slot_count);
    return true;
  }
};

std::unique_ptr<Pass> make_pass(const std::string& name) {
  if (name == "elide-identity") return std::make_unique<ElideIdentityPass>();
  if (name == "fuse-batchnorm") return std::make_unique<FuseBatchNormPass>();
  if (name == "fuse-activation") return std::make_unique<FuseActivationPass>();
  if (name == "lower-conv") return std::make_unique<LowerConvPass>();
  if (name == "plan-exec") return std::make_unique<PlanExecPass>();
  throw std::invalid_argument("unknown IR pass '" + name + "'");
}

}  // namespace

const std::vector<std::string>& PassManager::default_pipeline() {
  static const std::vector<std::string> pipeline = {
      "elide-identity", "fuse-batchnorm", "fuse-activation", "lower-conv",
      "plan-exec"};
  return pipeline;
}

const std::vector<std::string>& PassManager::known_passes() {
  return default_pipeline();  // every known pass is in the default pipeline
}

std::vector<std::string> PassManager::parse_pipeline(std::string_view csv) {
  if (csv.empty() || csv == "none") return {};
  if (csv == "default") return default_pipeline();
  std::vector<std::string> names;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string_view::npos ? csv.size() : comma;
    if (end > begin) names.emplace_back(csv.substr(begin, end - begin));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  for (const std::string& name : names) (void)make_pass(name);  // validate
  return names;
}

PassManager::PassManager(const std::vector<std::string>& names)
    : names_(names) {
  passes_.reserve(names.size());
  for (const std::string& name : names) passes_.push_back(make_pass(name));
}

PassManager::PassManager() : PassManager(default_pipeline()) {}

void PassManager::run(Graph& g) const {
  for (const auto& pass : passes_) {
    obs::Span span(std::string("ir.pass.") + pass->name(), "ir");
    const bool changed = pass->run(g);
    span.arg("changed", changed ? 1 : 0);
    static obs::MetricId runs =
        obs::MetricsRegistry::global().counter("ir.pass.runs");
    obs::MetricsRegistry::global().add(runs);
  }
}

}  // namespace mldist::nn::ir
