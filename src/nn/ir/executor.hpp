// Executes an optimised inference graph with a reusable scratch arena.
//
// An Executor owns one arena of output-buffer slots (assigned by the
// plan-exec pass; a trivial one-slot-per-node fallback covers unplanned
// graphs).  Buffers only ever grow, so after the first run at a given
// batch size the hot path performs no allocations.  Conv1D patch scratch
// lives in a thread-local arena with the same grow-only policy, because the
// conv op row-partitions large batches across the global thread pool.
//
// Executors are NOT thread-safe (the arena is reused across nodes); for
// concurrent forwards, Sequential keeps a pool of executors and hands one
// per call.  The graph itself is shared read-only.
//
// BatchNorm's per-feature sqrt(running_var + eps) is recomputed into the
// arena at the start of every run — running stats then flow into the
// compiled graph with no cache invalidation, and hoisting the sqrt out of
// the per-element loop is bitwise identical (sqrt and the division are
// exactly rounded) while removing batch*features sqrt calls per layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/ir/graph.hpp"
#include "nn/mat.hpp"

namespace mldist::nn::ir {

class Executor {
 public:
  explicit Executor(std::shared_ptr<const Graph> graph);

  const Graph& graph() const { return *graph_; }

  /// Inference forward for one batch; bitwise equal to the legacy
  /// layer-by-layer Sequential forward under every dispatch backend.
  Mat run(const Mat& x);

 private:
  const float* buffer_of(int id, const Mat& x) const;
  std::size_t width_of(const Node& n, const Mat& x) const;

  std::shared_ptr<const Graph> graph_;
  std::vector<int> slot_of_;                 ///< node id -> slot (-1 = input)
  std::vector<std::vector<float>> slots_;    ///< grow-only output buffers
  std::vector<std::vector<float>> norm_std_; ///< per node; see file comment
  /// Per-node observability, resolved once: counter id for
  /// nn.ir.node.<i>.<kind>.forward_ns plus the span name.
  struct NodeObs {
    std::size_t ns = 0;
    std::string span_name;
  };
  std::vector<NodeObs> node_obs_;
};

}  // namespace mldist::nn::ir
