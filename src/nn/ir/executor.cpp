#include "nn/ir/executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "kernels/conv1d.hpp"
#include "kernels/norm_act.hpp"
#include "nn/layer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::nn::ir {

namespace {

/// Below this many multiply-accumulates the fork/join overhead dominates
/// (same threshold as nn::gemm_rows, which the dense op routes through).
constexpr std::size_t kParallelThreshold = 1u << 19;

/// Epilogue for the node's own kernel call.  For Conv1D + fused BN the
/// norm/act stages cannot ride the GEMM (BN's feature axis spans
/// length*cout while the conv GEMM has cout columns), so they are split
/// into a second, post-GEMM epilogue; `post` is that split.
struct EpiloguePlan {
  kernels::GemmEpilogue main;
  kernels::GemmEpilogue post;
  bool has_post = false;
};

EpiloguePlan plan_epilogue(const Node& n, const std::vector<float>& norm_std) {
  EpiloguePlan p;
  if (n.bias != nullptr) p.main.bias = n.bias->data();
  const bool conv_bn = n.kind == OpKind::kConv1D && n.fused_bn;
  kernels::GemmEpilogue& tail = conv_bn ? p.post : p.main;
  if (n.fused_bn || n.kind == OpKind::kBatchNorm) {
    tail.norm_mean = n.norm.mean->data();
    tail.norm_std = norm_std.data();
    tail.norm_gamma = n.norm.gamma->data();
    tail.norm_beta = n.norm.beta->data();
  }
  if (n.fused_act || n.kind == OpKind::kActivation) {
    tail.act = n.act;
    tail.alpha = n.alpha;
  }
  p.has_post = conv_bn;
  return p;
}

/// Bitwise-identical to GlobalMaxPool1D::forward(x, /*training=*/false).
void global_max_pool(const float* in, float* out, std::size_t rows,
                     std::size_t length, std::size_t channels) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = in + r * length * channels;
    float* yr = out + r * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      float best = -std::numeric_limits<float>::infinity();
      for (std::size_t p = 0; p < length; ++p) {
        const float v = xr[p * channels + c];
        if (v > best) best = v;
      }
      yr[c] = best;
    }
  }
}

}  // namespace

Executor::Executor(std::shared_ptr<const Graph> graph)
    : graph_(std::move(graph)) {
  const auto& nodes = graph_->nodes();
  slot_of_.resize(nodes.size(), -1);
  std::size_t slot_count = graph_->slot_count();
  const bool planned = slot_count > 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == OpKind::kInput) continue;
    // Unplanned graphs (pipeline without plan-exec) get the trivial
    // one-slot-per-node layout — correct, just not arena-minimal.
    slot_of_[i] = planned ? nodes[i].slot : static_cast<int>(slot_count++);
  }
  slots_.resize(slot_count);
  norm_std_.resize(nodes.size());
  node_obs_.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == OpKind::kInput) continue;
    const std::string base = "nn.ir.node." + std::to_string(i) + "." +
                             op_kind_name(nodes[i].kind);
    node_obs_[i].ns =
        obs::MetricsRegistry::global().counter(base + ".forward_ns");
    node_obs_[i].span_name = base;
  }
}

const float* Executor::buffer_of(int id, const Mat& x) const {
  const std::size_t i = static_cast<std::size_t>(id);
  if (graph_->nodes()[i].kind == OpKind::kInput) return x.data();
  return slots_[static_cast<std::size_t>(slot_of_[i])].data();
}

std::size_t Executor::width_of(const Node& n, const Mat& x) const {
  // Width 0 marks a width-polymorphic chain with no declaring layer; every
  // such node inherits the runtime batch width.
  return n.out_width != 0 ? n.out_width : x.cols();
}

Mat Executor::run(const Mat& x) {
  const auto& nodes = graph_->nodes();
  const std::size_t rows = x.rows();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  // Refresh the only derived parameters.  Everything else is referenced
  // live, so training steps / checkpoint loads need no cache invalidation;
  // recomputing features-many sqrts per run is noise next to the GEMMs.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (!n.norm.valid()) continue;
    const std::vector<float>& var = *n.norm.var;
    norm_std_[i].resize(var.size());
    for (std::size_t j = 0; j < var.size(); ++j) {
      norm_std_[i][j] = std::sqrt(var[j] + n.norm.eps);
    }
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.kind == OpKind::kInput) {
      if (n.in_width != 0 && x.cols() != n.in_width) {
        throw std::invalid_argument("ir::Executor: input width mismatch");
      }
      continue;
    }
    const std::size_t out_w = width_of(n, x);
    std::vector<float>& buf = slots_[static_cast<std::size_t>(slot_of_[i])];
    if (buf.size() < rows * out_w) buf.resize(rows * out_w);
    float* out = buf.data();
    const float* in = buffer_of(n.inputs[0], x);

    obs::Span span(node_obs_[i].span_name, "nn");
    if (n.fused_bn || n.fused_act) span.arg("fused", 1);
    const util::Timer timer;

    switch (n.kind) {
      case OpKind::kDense: {
        const EpiloguePlan ep = plan_epilogue(n, norm_std_[i]);
        gemm_rows(in, static_cast<std::ptrdiff_t>(n.in_width), 1,
                  n.weights->data(), static_cast<std::ptrdiff_t>(out_w), 1,
                  out, rows, n.in_width, out_w, ep.main);
        break;
      }
      case OpKind::kConv1D: {
        const EpiloguePlan ep = plan_epilogue(n, norm_std_[i]);
        const std::size_t in_w = n.length * n.cin;
        const auto conv_rows = [&](std::size_t r0, std::size_t r1) {
          if (r0 >= r1) return;
          kernels::Conv1DShape s{r1 - r0, n.length, n.cin, n.cout, n.kernel};
          const std::size_t need =
              kernels::conv1d_scratch_floats(s, n.conv_algo);
          // Per-worker grow-only arena: row partitions of one batch reuse
          // it across nodes and runs with no allocation in steady state.
          thread_local std::vector<float> scratch;
          if (scratch.size() < need) scratch.resize(need);
          kernels::conv1d_forward(in + r0 * in_w, out + r0 * out_w, s,
                                  n.weights->data(), ep.main, n.conv_algo,
                                  need > 0 ? scratch.data() : nullptr);
        };
        // A row partition keeps every output element's fma chain intact,
        // so worker count never changes bits (same policy as gemm_rows).
        if (rows * n.length * n.kernel * n.cin * n.cout >= kParallelThreshold &&
            rows > 1) {
          util::ThreadPool::global().parallel_for(rows, conv_rows);
        } else {
          conv_rows(0, rows);
        }
        if (ep.has_post) {
          kernels::norm_act_inplace(out, rows, out_w, ep.post);
        }
        break;
      }
      case OpKind::kBatchNorm:
      case OpKind::kActivation: {
        const EpiloguePlan ep = plan_epilogue(n, norm_std_[i]);
        std::memcpy(out, in, rows * out_w * sizeof(float));
        kernels::norm_act_inplace(out, rows, out_w, ep.main);
        break;
      }
      case OpKind::kGlobalMaxPool:
        global_max_pool(in, out, rows, n.length, n.cin);
        break;
      case OpKind::kAdd: {
        // out = F(x) + x, matching Residual::forward's accumulation; float
        // addition is commutative, so the operand order cannot change bits.
        const float* skip = buffer_of(n.inputs[1], x);
        const std::size_t total = rows * out_w;
        if (n.fused_act && n.act == kernels::Activation::kRelu) {
          for (std::size_t j = 0; j < total; ++j) {
            float v = in[j] + skip[j];
            if (v < 0.0f) v = 0.0f;
            out[j] = v;
          }
        } else if (n.fused_act) {
          for (std::size_t j = 0; j < total; ++j) {
            float v = in[j] + skip[j];
            if (v < 0.0f) v *= n.alpha;
            out[j] = v;
          }
        } else {
          for (std::size_t j = 0; j < total; ++j) out[j] = in[j] + skip[j];
        }
        break;
      }
      case OpKind::kIdentity:
        std::memcpy(out, in, rows * out_w * sizeof(float));
        break;
      case OpKind::kOpaque: {
        // Delegate to the layer's own inference forward: trivially bitwise
        // equal to the legacy path, at the cost of two copies.
        const std::size_t in_w =
            n.in_width != 0 ? n.in_width : x.cols();
        Mat xin(rows, in_w);
        std::memcpy(xin.data(), in, rows * in_w * sizeof(float));
        const Mat y = n.opaque->forward(xin, /*training=*/false);
        std::memcpy(out, y.data(), rows * out_w * sizeof(float));
        break;
      }
      case OpKind::kInput:
        break;  // handled above
    }
    reg.add(node_obs_[i].ns,
            static_cast<std::uint64_t>(std::max(0.0, timer.seconds() * 1e9)));
  }

  const Node& out_node = nodes[static_cast<std::size_t>(graph_->output())];
  Mat result(rows, width_of(out_node, x));
  std::memcpy(result.data(), buffer_of(graph_->output(), x),
              result.size() * sizeof(float));
  return result;
}

}  // namespace mldist::nn::ir
