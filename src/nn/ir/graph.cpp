#include "nn/ir/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"
#include "util/crc32.hpp"

namespace mldist::nn::ir {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kDense:
      return "dense";
    case OpKind::kConv1D:
      return "conv1d";
    case OpKind::kBatchNorm:
      return "batchnorm";
    case OpKind::kActivation:
      return "activation";
    case OpKind::kGlobalMaxPool:
      return "global_max_pool";
    case OpKind::kAdd:
      return "add";
    case OpKind::kIdentity:
      return "identity";
    case OpKind::kOpaque:
      return "opaque";
  }
  return "unknown";
}

int Graph::add_node(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

std::size_t Graph::consumer_count(int id) const {
  std::size_t n = output_ == id ? 1 : 0;
  for (const Node& node : nodes_) {
    if (node.dead) continue;
    for (int in : node.inputs) {
      if (in == id) ++n;
    }
  }
  return n;
}

void Graph::replace_uses(int from, int to) {
  for (Node& node : nodes_) {
    for (int& in : node.inputs) {
      if (in == from) in = to;
    }
  }
  if (output_ == from) output_ = to;
}

void Graph::compact() {
  std::vector<int> remap(nodes_.size(), -1);
  std::vector<Node> live;
  live.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dead) continue;
    remap[i] = static_cast<int>(live.size());
    live.push_back(std::move(nodes_[i]));
  }
  for (Node& node : live) {
    for (int& in : node.inputs) in = remap[static_cast<std::size_t>(in)];
  }
  if (output_ >= 0) output_ = remap[static_cast<std::size_t>(output_)];
  nodes_ = std::move(live);
}

namespace {

/// Lower one layer into the graph; returns the id of its output node.
/// `width` tracks the per-sample feature width through the chain (0 =
/// unresolved until a batch arrives).
int lower_layer(Graph& g, Layer& layer, int input, std::size_t& width) {
  Node n;
  n.label = layer.name();
  n.inputs = {input};
  n.in_width = width;
  const std::size_t out = width != 0 ? layer.output_size(width) : 0;

  if (auto* dense = dynamic_cast<Dense*>(&layer)) {
    n.kind = OpKind::kDense;
    n.weights = &dense->weights();
    n.bias = &dense->bias();
    n.in_width = dense->in_features();
    n.out_width = dense->out_features();
  } else if (auto* conv = dynamic_cast<Conv1D*>(&layer)) {
    n.kind = OpKind::kConv1D;
    n.weights = &conv->weights();
    n.bias = &conv->bias();
    n.length = conv->length();
    n.cin = conv->in_channels();
    n.cout = conv->out_channels();
    n.kernel = conv->kernel_size();
    n.in_width = n.length * n.cin;
    n.out_width = n.length * n.cout;
  } else if (auto* bn = dynamic_cast<BatchNorm*>(&layer)) {
    n.kind = OpKind::kBatchNorm;
    n.norm = {&bn->gamma(), &bn->beta(), &bn->running_mean(),
              &bn->running_var(), bn->eps()};
    n.in_width = bn->features();
    n.out_width = bn->features();
  } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
    n.kind = OpKind::kActivation;
    n.act = kernels::Activation::kRelu;
    n.out_width = out;
  } else if (auto* leaky = dynamic_cast<LeakyReLU*>(&layer)) {
    n.kind = OpKind::kActivation;
    n.act = kernels::Activation::kLeakyRelu;
    n.alpha = leaky->alpha();
    n.out_width = out;
  } else if (auto* pool = dynamic_cast<GlobalMaxPool1D*>(&layer)) {
    n.kind = OpKind::kGlobalMaxPool;
    n.length = pool->length();
    n.cin = pool->channels();
    n.in_width = n.length * n.cin;
    n.out_width = n.cin;
  } else if (auto* res = dynamic_cast<Residual*>(&layer)) {
    // Inner chain, then an explicit add with the skip edge — the wrapper's
    // control flow becomes real graph structure.
    int cur = input;
    std::size_t w = width;
    for (std::size_t i = 0; i < res->inner_count(); ++i) {
      cur = lower_layer(g, res->inner(i), cur, w);
    }
    Node add;
    add.kind = OpKind::kAdd;
    add.label = "add";
    add.inputs = {cur, input};  // out = F(x) + x, matching Residual::forward
    add.in_width = w;
    add.out_width = w;
    width = w;
    return g.add_node(std::move(add));
  } else if (dynamic_cast<Dropout*>(&layer) != nullptr) {
    // Inference-mode dropout is the identity; the elide-identity pass
    // removes the node entirely.
    n.kind = OpKind::kIdentity;
    n.out_width = out;
  } else {
    // LSTM, tanh, sigmoid, and any future layer: delegate to the layer's
    // own inference forward.  Running the exact same code keeps the node
    // trivially bitwise-equal to the legacy path.
    n.kind = OpKind::kOpaque;
    n.opaque = &layer;
    n.out_width = out;
  }

  if (n.out_width == 0 && width != 0) n.out_width = layer.output_size(width);
  width = n.out_width;
  return g.add_node(std::move(n));
}

std::size_t infer_input_width(Sequential& model) {
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const std::size_t w = model.layer(i).input_size();
    // Layers before the first declaring one are width-polymorphic
    // pass-throughs, so the declared width is the model's input width.
    if (w != 0) return w;
  }
  return 0;
}

}  // namespace

Graph Graph::lower(Sequential& model, std::size_t input_width) {
  Graph g;
  std::size_t width = input_width != 0 ? input_width : infer_input_width(model);
  Node in;
  in.kind = OpKind::kInput;
  in.label = "input";
  in.in_width = width;
  in.out_width = width;
  int cur = g.add_node(std::move(in));
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    cur = lower_layer(g, model.layer(i), cur, width);
  }
  g.set_output(cur);
  return g;
}

std::string Graph::to_text() const {
  std::string s = "ir {\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    s += "  %" + std::to_string(i) + " = " + n.label;
    if (!n.inputs.empty()) {
      s += " (";
      for (std::size_t j = 0; j < n.inputs.size(); ++j) {
        if (j > 0) s += ", ";
        s += "%" + std::to_string(n.inputs[j]);
      }
      s += ")";
    }
    s += " out=" + std::to_string(n.out_width);
    if (n.kind == OpKind::kConv1D) {
      s += " algo=";
      s += kernels::conv1d_algo_name(n.conv_algo);
    }
    if (n.fused_bn || n.fused_act) {
      s += " fused=[";
      if (n.fused_bn) s += "bn";
      if (n.fused_act) {
        if (n.fused_bn) s += " ";
        s += n.act == kernels::Activation::kRelu ? "relu" : "leaky_relu";
      }
      s += "]";
    }
    s += "\n";
  }
  s += "  output %" + std::to_string(output_) + "\n}\n";
  return s;
}

std::uint32_t Graph::topology_hash() const {
  util::Crc32 crc;
  const auto put_u32 = [&](std::uint32_t v) { crc.update(&v, sizeof(v)); };
  put_u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    put_u32(static_cast<std::uint32_t>(n.kind));
    put_u32(static_cast<std::uint32_t>(n.inputs.size()));
    for (int in : n.inputs) put_u32(static_cast<std::uint32_t>(in));
    for (std::size_t v : {n.in_width, n.out_width, n.length, n.cin, n.cout,
                          n.kernel}) {
      put_u32(static_cast<std::uint32_t>(v));
    }
  }
  put_u32(static_cast<std::uint32_t>(output_));
  return crc.value();
}

}  // namespace mldist::nn::ir
