// Graph IR for inference over nn models.
//
// A Graph is a flat dataflow graph lowered from an nn::Sequential: nodes
// carry an op kind, non-owning references to the source layer's parameters,
// explicit input edges, and per-sample feature widths.  The node vector is
// already a topological order (lowering appends producers before consumers
// and passes preserve the order), so "iterate nodes()" IS the schedule.
//
// A Residual wrapper lowers to its inner chain plus an explicit two-input
// kAdd node whose second edge skips back to the wrapper's input — the skip
// connection becomes a real edge instead of control flow, which is what
// lets the fusion passes reason about consumer counts.
//
// Parameters are referenced, never copied: a compiled graph always sees the
// current weights, so training steps and gradcheck perturbations need no
// cache invalidation.  The only derived quantity (BatchNorm's per-feature
// sqrt(var + eps)) is recomputed by the Executor at the start of every run
// for the same reason.
//
// Optimisation passes (nn/ir/pass.hpp) annotate nodes (fused_bn /
// fused_act / conv_algo / slot) and mark replaced nodes dead; compact()
// renumbers.  Every pass preserves the bitwise-determinism contract — the
// optimised graph's output is bitwise equal to the layer-by-layer forward
// it replaces (tests/kernel_equiv_test.cpp, label "ir").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/conv1d.hpp"
#include "kernels/gemm.hpp"
#include "nn/mat.hpp"

namespace mldist::nn {
class Layer;
class Sequential;
}  // namespace mldist::nn

namespace mldist::nn::ir {

enum class OpKind {
  kInput = 0,
  kDense,
  kConv1D,
  kBatchNorm,
  kActivation,
  kGlobalMaxPool,
  kAdd,
  kIdentity,
  kOpaque,  ///< delegates to Layer::forward (LSTM, tanh, sigmoid)
};

const char* op_kind_name(OpKind kind);

/// Non-owning references to a BatchNorm's inference parameters.
struct NormRef {
  const std::vector<float>* gamma = nullptr;
  const std::vector<float>* beta = nullptr;
  const std::vector<float>* mean = nullptr;
  const std::vector<float>* var = nullptr;
  float eps = 0.0f;

  bool valid() const { return gamma != nullptr; }
};

struct Node {
  OpKind kind = OpKind::kIdentity;
  std::string label;        ///< source layer name, e.g. "conv1d(1->32,k=3)"
  std::vector<int> inputs;  ///< producer node ids (kAdd has two)
  std::size_t in_width = 0;   ///< 0 = inherits the runtime batch width
  std::size_t out_width = 0;  ///< 0 = inherits the runtime batch width

  // kDense / kConv1D parameters (dense: in x out; conv: kernel*cin x cout).
  const Mat* weights = nullptr;
  const std::vector<float>* bias = nullptr;

  // kConv1D geometry; kGlobalMaxPool reuses length + cin(=channels).
  std::size_t length = 0;
  std::size_t cin = 0;
  std::size_t cout = 0;
  std::size_t kernel = 0;
  kernels::Conv1DAlgo conv_algo = kernels::Conv1DAlgo::kIm2col;

  // kBatchNorm parameters — on a kDense/kConv1D node when fused_bn is set.
  NormRef norm;

  // kActivation parameters — applied as a fused epilogue when fused_act.
  kernels::Activation act = kernels::Activation::kNone;
  float alpha = 0.3f;

  Layer* opaque = nullptr;  ///< kOpaque delegate

  bool fused_bn = false;   ///< batchnorm runs inside this node's epilogue
  bool fused_act = false;  ///< activation runs inside this node's epilogue

  int slot = -1;  ///< output-buffer slot (plan-exec pass; -1 = unplanned)
  bool dead = false;
};

class Graph {
 public:
  /// Lower `model` into a fresh graph.  `input_width` 0 means "infer from
  /// the first layer that declares one" (Dense/Conv1D/BatchNorm/LSTM/pool);
  /// a model of only width-polymorphic layers keeps width 0 and resolves it
  /// from the batch at execution time.
  static Graph lower(Sequential& model, std::size_t input_width = 0);

  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int output() const { return output_; }
  void set_output(int id) { output_ = id; }

  int add_node(Node node);

  /// Live consumers of node `id`, counting the graph output as one.
  std::size_t consumer_count(int id) const;

  /// Rewire every use of `from` (edges and the graph output) to `to`.
  void replace_uses(int from, int to);

  /// Drop dead nodes and renumber edges.  Passes mark `dead` instead of
  /// erasing so ids stay stable while they iterate.
  void compact();

  /// Buffer slots assigned by the plan-exec pass (0 when it has not run).
  std::size_t slot_count() const { return slot_count_; }
  void set_slot_count(std::size_t n) { slot_count_ = n; }

  /// Stable text rendering, golden-tested via --dump-ir.
  std::string to_text() const;

  /// CRC-32 over op kinds, edges, and shapes of the lowered graph.  Fusion
  /// annotations and kernel plans are excluded: the hash pins the
  /// architecture, not the optimisation level, so it is stable across pass
  /// pipelines and dispatch backends.  nn::save_params stamps it so
  /// parameters cannot load into a structurally different model.
  std::uint32_t topology_hash() const;

 private:
  std::vector<Node> nodes_;
  int output_ = -1;
  std::size_t slot_count_ = 0;
};

}  // namespace mldist::nn::ir
