// Optimisation passes over the inference graph, run as a declared pipeline.
//
// Default pipeline, in order (order is load-bearing and golden-tested):
//   elide-identity   drop kIdentity nodes (inference-mode dropout)
//   fuse-batchnorm   fold a BatchNorm into its single GEMM producer's
//                    epilogue (Dense: in the GEMM column epilogue; Conv1D:
//                    as a post-GEMM norm_act sweep, because BN's feature
//                    axis spans length*cout while the conv GEMM only has
//                    cout columns).  Runs BEFORE fuse-activation so
//                    Dense→BN→ReLU fuses fully while Dense→ReLU→BN
//                    correctly leaves the BN standalone.
//   fuse-activation  fold a ReLU/LeakyReLU into its single producer's
//                    epilogue (Dense, Conv1D, standalone BatchNorm, Add)
//   lower-conv       pick the Conv1D algorithm per dispatch backend:
//                    blocked/avx2 take the im2col-free strided-GEMM path;
//                    reference keeps the single whole-batch im2col GEMM
//                    (per-sample kernel calls buy it nothing)
//   plan-exec        liveness-based output-buffer slot assignment so the
//                    Executor reuses a small arena with no per-call
//                    allocations
//
// Determinism contract per pass: every rewrite replaces computation with a
// sequence that is bitwise identical per element under every MLDIST_KERNEL
// backend (see DESIGN.md §12).  tests/kernel_equiv_test.cpp pins each pass
// individually (fused-vs-unfused exact equality with the pass enabled vs
// disabled).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nn/ir/graph.hpp"

namespace mldist::nn::ir {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Mutates `g`; returns true when anything changed.
  virtual bool run(Graph& g) = 0;
};

class PassManager {
 public:
  /// The declared default pipeline (see file comment), in order.
  static const std::vector<std::string>& default_pipeline();

  /// All registered pass names.
  static const std::vector<std::string>& known_passes();

  /// Parse a --passes value: comma-separated pass names, or "default", or
  /// "none" / "" for an empty pipeline.  Throws std::invalid_argument on
  /// unknown names.
  static std::vector<std::string> parse_pipeline(std::string_view csv);

  /// Build a manager running `names` in the given order; throws
  /// std::invalid_argument on unknown names.
  explicit PassManager(const std::vector<std::string>& names);
  PassManager();  ///< the default pipeline

  /// Run the pipeline over `g` (one obs span + run counter per pass).
  void run(Graph& g) const;

  const std::vector<std::string>& pipeline() const { return names_; }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<std::string> names_;
};

}  // namespace mldist::nn::ir
