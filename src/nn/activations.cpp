#include "nn/activations.hpp"

#include <cmath>

namespace mldist::nn {

Mat ReLU::forward(const Mat& x, bool training) {
  Mat y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] < 0.0f) y.data()[i] = 0.0f;
  }
  if (training) x_cache_ = x;
  return y;
}

Mat ReLU::backward(const Mat& grad_out) {
  Mat dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x_cache_.data()[i] <= 0.0f) dx.data()[i] = 0.0f;
  }
  return dx;
}

Mat LeakyReLU::forward(const Mat& x, bool training) {
  Mat y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] < 0.0f) y.data()[i] *= alpha_;
  }
  if (training) x_cache_ = x;
  return y;
}

Mat LeakyReLU::backward(const Mat& grad_out) {
  Mat dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    if (x_cache_.data()[i] <= 0.0f) dx.data()[i] *= alpha_;
  }
  return dx;
}

Mat Tanh::forward(const Mat& x, bool training) {
  Mat y = x;
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = std::tanh(y.data()[i]);
  if (training) y_cache_ = y;
  return y;
}

Mat Tanh::backward(const Mat& grad_out) {
  Mat dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const float t = y_cache_.data()[i];
    dx.data()[i] *= 1.0f - t * t;
  }
  return dx;
}

Mat Sigmoid::forward(const Mat& x, bool training) {
  Mat y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y.data()[i] = 1.0f / (1.0f + std::exp(-y.data()[i]));
  }
  if (training) y_cache_ = y;
  return y;
}

Mat Sigmoid::backward(const Mat& grad_out) {
  Mat dx = grad_out;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const float s = y_cache_.data()[i];
    dx.data()[i] *= s * (1.0f - s);
  }
  return dx;
}

}  // namespace mldist::nn
