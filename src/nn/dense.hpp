// Fully connected layer y = x W + b with Glorot-uniform initialisation
// (the Keras Dense default, which the paper's models rely on).
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, util::Xoshiro256& rng);

  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::size_t output_size(std::size_t input_size) const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  std::size_t input_size() const override { return in_; }

  Mat& weights() { return w_; }
  std::vector<float>& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Mat w_;                    // in x out
  std::vector<float> b_;     // out
  Mat dw_;                   // gradient accumulators
  std::vector<float> db_;
  Mat x_cache_;              // input of the last training forward
};

}  // namespace mldist::nn
