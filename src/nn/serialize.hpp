// Model parameter persistence.
//
// The paper stores the trained Keras model in an ".h5" file between the
// offline and online phases; our equivalent is a compact binary ".nnb"
// format holding every parameter tensor in layer order.  Loading requires a
// structurally identical model (same layer stack); shapes are verified.
//
// Format: magic "NNB1" | u32 tensor_count | per tensor: u64 size | f32[size]
//         | footer "CRC1" | u32 crc32-of-payload.
// The CRC-32 footer (util/crc32) detects on-disk corruption at load time;
// legacy files without the footer still load, with a warning on stderr.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/model.hpp"

namespace mldist::nn {

/// Write all parameters of `model` to `path`.  Throws std::runtime_error on
/// I/O failure.
void save_params(Sequential& model, const std::string& path);

/// Load parameters saved by save_params into a structurally identical
/// model.  Throws std::runtime_error on I/O failure or shape mismatch.
void load_params(Sequential& model, const std::string& path);

/// Stream variants (used by core::save_model to embed the payload after a
/// self-describing header).
void save_params(Sequential& model, std::ostream& out);
void load_params(Sequential& model, std::istream& in);

}  // namespace mldist::nn
