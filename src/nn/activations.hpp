// Stateless elementwise activations: ReLU, LeakyReLU, tanh, sigmoid.
// LeakyReLU's default negative slope is 0.3, matching Keras' LeakyReLU
// layer that the paper's MLP IV-VI use.
#pragma once

#include "nn/layer.hpp"

namespace mldist::nn {

class ReLU : public Layer {
 public:
  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override { return "relu"; }
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }

 private:
  Mat x_cache_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.3f) : alpha_(alpha) {}
  float alpha() const { return alpha_; }
  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override { return "leaky_relu"; }
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }

 private:
  float alpha_;
  Mat x_cache_;
};

class Tanh : public Layer {
 public:
  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override { return "tanh"; }
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }

 private:
  Mat y_cache_;
};

class Sigmoid : public Layer {
 public:
  Mat forward(const Mat& x, bool training) override;
  Mat backward(const Mat& grad_out) override;
  std::string name() const override { return "sigmoid"; }
  std::size_t output_size(std::size_t input_size) const override {
    return input_size;
  }

 private:
  Mat y_cache_;
};

}  // namespace mldist::nn
