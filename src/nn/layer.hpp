// Layer interface shared by every trainable and stateless layer.
//
// Training protocol per mini-batch:
//   1. model calls forward(x, /*training=*/true) through the stack,
//   2. loss produces dLoss/dLogits,
//   3. model calls backward(grad) in reverse; each layer ACCUMULATES its
//      parameter gradients (optimizer zeroes them after the step) and
//      returns the gradient w.r.t. its input.
//
// Layers cache whatever forward activations backward needs, so a layer
// instance handles one batch at a time (no nested forward calls).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/mat.hpp"
#include "util/rng.hpp"

namespace mldist::nn {

/// A view over one parameter tensor and its gradient accumulator.
struct ParamView {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Mat forward(const Mat& x, bool training) = 0;
  virtual Mat backward(const Mat& grad_out) = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<ParamView> params() { return {}; }

  /// Human-readable layer description, e.g. "dense(128->1024)".
  virtual std::string name() const = 0;

  /// Output feature width for a given input width; throws on mismatch with
  /// the layer's fixed input width.
  virtual std::size_t output_size(std::size_t input_size) const = 0;

  /// The input width this layer is constructed for, or 0 when it accepts
  /// any width (activations, dropout).  ir::Graph::lower uses it to infer
  /// the model's input width without a sample batch.
  virtual std::size_t input_size() const { return 0; }

  std::size_t param_count() {
    std::size_t n = 0;
    for (const auto& p : params()) n += p.size;
    return n;
  }
};

}  // namespace mldist::nn
