#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mldist::nn {

Mat softmax(const Mat& logits) {
  Mat p(logits.rows(), logits.cols());
  for (std::size_t n = 0; n < logits.rows(); ++n) {
    const float* z = logits.row(n);
    float* pr = p.row(n);
    const float zmax = *std::max_element(z, z + logits.cols());
    float sum = 0.0f;
    for (std::size_t j = 0; j < logits.cols(); ++j) {
      pr[j] = std::exp(z[j] - zmax);
      sum += pr[j];
    }
    for (std::size_t j = 0; j < logits.cols(); ++j) pr[j] /= sum;
  }
  return p;
}

std::vector<int> argmax_rows(const Mat& m) {
  std::vector<int> out(m.rows());
  for (std::size_t n = 0; n < m.rows(); ++n) {
    const float* r = m.row(n);
    out[n] = static_cast<int>(std::max_element(r, r + m.cols()) - r);
  }
  return out;
}

LossResult softmax_cross_entropy(const Mat& logits,
                                 const std::vector<int>& labels,
                                 bool compute_grad) {
  assert(labels.size() == logits.rows());
  LossResult res;
  res.probs = softmax(logits);
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  std::size_t hits = 0;
  double loss = 0.0;
  if (compute_grad) res.dlogits = Mat(batch, classes);
  for (std::size_t n = 0; n < batch; ++n) {
    const int y = labels[n];
    assert(y >= 0 && static_cast<std::size_t>(y) < classes);
    const float* pr = res.probs.row(n);
    loss += -std::log(std::max(pr[y], 1e-12f));
    const float* row = pr;
    if (static_cast<std::size_t>(
            std::max_element(row, row + classes) - row) ==
        static_cast<std::size_t>(y)) {
      ++hits;
    }
    if (compute_grad) {
      float* g = res.dlogits.row(n);
      const float inv = 1.0f / static_cast<float>(batch);
      for (std::size_t j = 0; j < classes; ++j) g[j] = pr[j] * inv;
      g[y] -= inv;
    }
  }
  res.loss = loss / static_cast<double>(batch);
  res.accuracy = static_cast<double>(hits) / static_cast<double>(batch);
  return res;
}

}  // namespace mldist::nn
