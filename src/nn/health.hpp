// Numeric-health guards for training (ISSUE 2: fault-tolerant training).
//
// Gohr-style neural distinguishers are sensitive to training instability —
// related work retrains with adjusted schedules when accuracy collapses
// (Zhang & Wang; Lu et al.).  A HealthMonitor attached to Sequential::fit
// watches every mini-batch and epoch for the classic failure signatures:
//
//   - non-finite loss (NaN/Inf from overflow or poisoned weights),
//   - gradient-norm blowup (exploding updates before they hit the params),
//   - epoch-loss explosion against a rolling baseline of recent epochs,
//   - non-finite weights after an epoch.
//
// Any of these raises TrainingDiverged, a typed condition that carries the
// issue kind, the epoch and the offending value.  MLDistinguisher's retry
// policy catches it, rolls back to the last good checkpoint and retries
// with a reduced learning rate (see core/checkpoint.hpp).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace mldist::nn {

enum class HealthIssue {
  kNone = 0,
  kNonFiniteLoss,
  kNonFiniteWeight,
  kLossExplosion,
  kGradientBlowup,
};

const char* to_string(HealthIssue issue);

struct HealthOptions {
  /// Diverged when an epoch's mean loss exceeds this factor times the
  /// rolling mean of the last `baseline_window` epoch losses.
  double loss_explosion_factor = 10.0;
  std::size_t baseline_window = 5;
  /// Diverged when a mini-batch gradient L2 norm exceeds this bound.
  double grad_norm_limit = 1e6;
  /// Scan all weights for NaN/Inf at the end of each epoch.
  bool check_weights = true;
};

/// Typed divergence condition raised by the guards below.
class TrainingDiverged : public std::runtime_error {
 public:
  TrainingDiverged(HealthIssue issue, int epoch, double value);

  HealthIssue issue() const { return issue_; }
  int epoch() const { return epoch_; }
  double value() const { return value_; }

 private:
  HealthIssue issue_;
  int epoch_;
  double value_;
};

/// Stateful guard owned by one fit attempt (reset() before reuse).
class HealthMonitor {
 public:
  HealthMonitor() = default;
  explicit HealthMonitor(HealthOptions options) : options_(options) {}

  /// Per-batch guard: non-finite loss and gradient blowup.  Called after
  /// backward, before the optimizer applies the (possibly poisoned) step.
  void check_batch(int epoch, double batch_loss, double grad_norm);

  /// Per-epoch guard: non-finite/exploding epoch loss, non-finite weights.
  /// Feeds the rolling baseline when the epoch is healthy.
  void check_epoch(int epoch, double train_loss,
                   const std::vector<ParamView>& params);

  /// Forget the rolling baseline (a fresh attempt after a rollback).
  void reset() { recent_losses_.clear(); }

  const HealthOptions& options() const { return options_; }

 private:
  HealthOptions options_;
  std::vector<double> recent_losses_;  ///< last `baseline_window` epoch losses
};

}  // namespace mldist::nn
