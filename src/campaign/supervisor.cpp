#include "campaign/supervisor.hpp"

#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/worker.hpp"
#include "core/checkpoint.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/ship.hpp"
#include "obs/signal.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "util/process.hpp"

namespace mldist::campaign {

namespace {

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class CellPhase {
  kPending,
  kLeased,
  kBackoff,
  kDone,
  kFailed,
  kSkipped,
};

struct CellState {
  Cell cell;
  CellPhase phase = CellPhase::kPending;
  int attempts = 0;        ///< leases consumed
  double ready_at = 0.0;   ///< backoff expiry (monotonic seconds)
  double cost = 0.0;       ///< spec.hpp cell_cost(): lease ordering + ETA
  std::string train_tsv;   ///< journaled offline result (resume record)
};

/// Lease queue order: heterogeneous cell costs, most expensive first so the
/// long poles start while cheap cells fill the tail (classic LPT); ties
/// break on grid index for determinism.
struct CostFirst {
  bool operator()(const std::pair<double, std::size_t>& a,
                  const std::pair<double, std::size_t>& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};
using ReadyQueue = std::set<std::pair<double, std::size_t>, CostFirst>;

struct WorkerSlot {
  pid_t pid = -1;
  int cmd_fd = -1;     ///< parent write end
  int status_fd = -1;  ///< parent read end, nonblocking
  std::string rx;      ///< partial status-line buffer
  std::ptrdiff_t leased = -1;  ///< grid index of the held cell, -1 = idle
  bool ready = false;          ///< READY received
  bool killing = false;        ///< we SIGKILLed it (watchdog)
  double last_heartbeat = 0.0;
};

/// Live counters behind the /runz detail provider.  Heap + shared_ptr so a
/// provider invocation racing the supervisor's teardown stays valid.
struct LiveCounters {
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> skipped{0};
  std::atomic<std::size_t> in_flight{0};
  std::atomic<std::size_t> workers{0};
};

/// Per-lease progress behind the /runz detail provider (ISSUE 8): which
/// cells are in flight, their cost estimates, and the completed-cost
/// throughput the per-cell ETA is derived from.  Mutex-protected because
/// the provider runs on the HTTP serving thread.
struct LiveDetail {
  struct Lease {
    std::string id;
    std::uint64_t index = 0;
    double cost = 0.0;
    double since = 0.0;  ///< monotonic lease time
  };
  std::mutex mu;
  std::vector<Lease> leases;
  double cost_total = 0.0;
  double cost_done = 0.0;
  double t0 = 0.0;  ///< monotonic campaign start
};

/// The whole campaign run: built fresh by Supervisor::run so the public
/// class stays a thin handle.
class Runner {
 public:
  Runner(const CampaignSpec& spec, const SupervisorOptions& options)
      : spec_(spec), options_(options) {}

  CampaignReport run();

 private:
  // --- paths ---------------------------------------------------------------
  std::string journal_path() const {
    return options_.state_dir + "/campaign.state.jsonl";
  }
  std::string cells_dir() const { return options_.state_dir + "/cells"; }
  std::string obs_dir() const { return options_.state_dir + "/obs"; }
  std::string snapshot_path(const CellState& cs) const {
    return cells_dir() + "/" + cs.cell.id + ".model";
  }

  // --- WAL -----------------------------------------------------------------
  void journal(const util::JsonBuilder& record) {
    const util::WriteResult rc = util::append_jsonl(journal_path(), record.str());
    if (!rc) {
      obs::log_error("campaign", "WAL append failed").field("error", rc.error);
    }
  }
  void journal_event(const char* event, const CellState& cs,
                     util::JsonBuilder&& extra) {
    util::JsonBuilder j;
    j.field("event", event)
        .field("cell", cs.cell.id)
        .field("index", static_cast<std::uint64_t>(cs.cell.index))
        .merge(extra);
    journal(j);
  }

  void append_history(const CellState& cs, const std::string& payload,
                      const std::string& telemetry) {
    util::JsonBuilder j;
    j.field("campaign", spec_.name)
        .field("cell", cs.cell.id)
        .field("index", static_cast<std::uint64_t>(cs.cell.index))
        .raw("manifest", obs::RunManifest::current().to_json())
        .raw("payload", payload)
        .raw("telemetry", telemetry.empty() ? "null" : telemetry);
    const util::WriteResult rc =
        util::append_jsonl(options_.history_path, j.str());
    if (!rc) {
      obs::log_error("campaign", "history append failed")
          .field("error", rc.error);
    }
  }

  // --- lifecycle -----------------------------------------------------------
  void load_prior_state();
  void reconcile_history();
  void run_serial();
  void run_sharded();

  // --- sharded-mode machinery ----------------------------------------------
  void spawn_worker();
  void shutdown_workers();
  void assign_ready_cells(double now);
  void pump_status(WorkerSlot& w, double now);
  void handle_status_line(WorkerSlot& w, const std::string& line, double now);
  void reap_workers(double now);
  void run_watchdog(double now);
  void promote_backoffs(double now);

  void complete_cell(CellState& cs, const std::string& payload,
                     const std::string& telemetry);
  void fail_attempt(CellState& cs, const std::string& reason, double now);

  void queue_ready(const CellState& cs) {
    ready_.insert({cs.cost, cs.cell.index});
  }
  void detail_lease(const CellState& cs, double now) {
    std::lock_guard<std::mutex> lock(detail_->mu);
    detail_->leases.push_back(
        {cs.cell.id, static_cast<std::uint64_t>(cs.cell.index), cs.cost, now});
  }
  void detail_release(const CellState& cs, bool completed) {
    std::lock_guard<std::mutex> lock(detail_->mu);
    std::erase_if(detail_->leases, [&](const LiveDetail::Lease& l) {
      return l.index == static_cast<std::uint64_t>(cs.cell.index);
    });
    if (completed) detail_->cost_done += cs.cost;
  }
  bool work_remaining() const {
    return finished_ < cells_.size();
  }
  CellState* cell_by_index(std::uint64_t index) {
    return index < cells_.size() ? &cells_[index] : nullptr;
  }

  void gc_state_dir();

  CampaignSpec spec_;
  SupervisorOptions options_;
  std::vector<CellState> cells_;
  std::map<std::string, std::string> done_payloads_;   ///< WAL replay, by id
  std::map<std::string, std::string> done_telemetry_;
  ReadyQueue ready_;  ///< leaseable cells, most expensive first
  std::vector<WorkerSlot> workers_;
  CampaignReport report_;
  std::string grid_crc_;  ///< fingerprint of the expanded grid
  std::shared_ptr<LiveCounters> live_ = std::make_shared<LiveCounters>();
  std::shared_ptr<LiveDetail> detail_ = std::make_shared<LiveDetail>();
  std::size_t finished_ = 0;  ///< cells in a terminal phase
  bool stop_requested_ = false;
  double reclaim_latency_ns_sum_ = 0.0;
  std::string worker_trace_dir_;  ///< "" = worker tracing off
};

CampaignReport Runner::run() {
  if (options_.state_dir.empty()) {
    throw std::invalid_argument("campaign: state_dir is required");
  }
  std::filesystem::create_directories(cells_dir());
  if (options_.history_path.empty()) {
    options_.history_path = options_.state_dir + "/history.jsonl";
  }
  if (options_.worker_exe.empty()) {
    options_.worker_exe = util::self_exe_path();
  }
  options_.max_cell_retries = std::max(0, options_.max_cell_retries);
  if (options_.trace_workers || !obs::Tracer::global().path().empty()) {
    // A traced campaign traces its workers too: one lane per process,
    // merged below once the campaign ends.
    worker_trace_dir_ = obs_dir();
    std::filesystem::create_directories(worker_trace_dir_);
  }

  util::FileLock lock;
  std::string lock_error;
  if (!lock.acquire(options_.state_dir + "/LOCK", &lock_error)) {
    throw std::invalid_argument("campaign: " + lock_error);
  }

  const std::vector<Cell> grid = expand_grid(spec_);
  grid_crc_ = grid_crc(grid);
  cells_.reserve(grid.size());
  double cost_total = 0.0;
  for (const Cell& cell : grid) {
    CellState cs;
    cs.cell = cell;
    cs.cost = cell_cost(cs.cell.config);
    cost_total += cs.cost;
    cells_.push_back(std::move(cs));
  }
  report_.cells_total = cells_.size();

  load_prior_state();
  reconcile_history();

  {
    util::JsonBuilder j;
    j.field("event", "start")
        .field("campaign", spec_.name)
        .field("cells", static_cast<std::uint64_t>(cells_.size()))
        .field("seed", spec_.seed)
        .field("grid", grid_crc_)
        .field("workers", static_cast<std::uint64_t>(options_.workers))
        .raw("manifest", obs::RunManifest::current().to_json());
    journal(j);
  }

  // /runz: fold campaign progress into the live status endpoint, with
  // per-lease cost/ETA derived from completed-cost throughput.
  {
    std::lock_guard<std::mutex> lock(detail_->mu);
    detail_->cost_total = cost_total;
    detail_->t0 = mono_s();
  }
  {
    auto live = live_;
    auto detail = detail_;
    const std::string name = spec_.name;
    const std::uint64_t total = cells_.size();
    obs::RunStatus::global().set_detail_provider([live, detail, name, total] {
      util::JsonBuilder j;
      j.field("campaign", name)
          .field("cells_total", total)
          .field("cells_done", static_cast<std::uint64_t>(live->done.load()))
          .field("cells_failed",
                 static_cast<std::uint64_t>(live->failed.load()))
          .field("cells_skipped",
                 static_cast<std::uint64_t>(live->skipped.load()))
          .field("in_flight",
                 static_cast<std::uint64_t>(live->in_flight.load()))
          .field("workers", static_cast<std::uint64_t>(live->workers.load()));
      {
        std::lock_guard<std::mutex> lock(detail->mu);
        const double now = mono_s();
        const double elapsed = std::max(1e-9, now - detail->t0);
        // Unitless cost per wall second, from completed cells only; 0 until
        // the first completion (ETAs render as null until then).
        const double rate = detail->cost_done / elapsed;
        j.field("cost_total", detail->cost_total)
            .field("cost_done", detail->cost_done)
            .field("cost_rate", rate);
        std::vector<std::string> leases;
        leases.reserve(detail->leases.size());
        for (const LiveDetail::Lease& l : detail->leases) {
          util::JsonBuilder e;
          e.field("cell", l.id)
              .field("index", l.index)
              .field("cost", l.cost)
              .field("running_s", now - l.since);
          if (rate > 0.0) {
            e.field("eta_s", l.cost / rate);
          } else {
            e.raw("eta_s", "null");
          }
          leases.push_back(e.str());
        }
        j.raw("leases", util::JsonBuilder::array(leases));
      }
      return j.str();
    });
  }
  obs::RunStatus::global().set_phase("campaign");

  const double t0 = mono_s();
  if (options_.workers == 0) {
    run_serial();
  } else {
    run_sharded();
  }
  report_.seconds = mono_s() - t0;

  if (!worker_trace_dir_.empty()) {
    // Stitch the per-worker lanes (including the truncated lane a
    // chaos-killed worker left behind) into one Perfetto-loadable timeline.
    const std::vector<std::string> lanes =
        obs::list_trace_files(worker_trace_dir_);
    if (!lanes.empty()) {
      obs::TraceMergeResult merged;
      std::string error;
      const std::string out = worker_trace_dir_ + "/campaign.trace.json";
      if (obs::merge_trace_files(lanes, out, &merged, &error)) {
        obs::log_info("campaign", "merged worker traces")
            .field("path", out)
            .field("lanes", static_cast<std::uint64_t>(merged.lanes))
            .field("events", static_cast<std::uint64_t>(merged.events));
      } else {
        obs::log_warn("campaign", "trace merge failed").field("error", error);
      }
    }
  }

  if (report_.reclaims > 0) {
    report_.reclaim_latency_ns_mean =
        reclaim_latency_ns_sum_ / static_cast<double>(report_.reclaims);
  }

  if (report_.interrupted) {
    util::JsonBuilder j;
    j.field("event", "interrupted");
    journal(j);
  } else {
    gc_state_dir();
  }
  {
    util::JsonBuilder j;
    j.field("event", "end")
        .field("done", static_cast<std::uint64_t>(report_.cells_done))
        .field("failed", static_cast<std::uint64_t>(report_.cells_failed))
        .field("skipped", static_cast<std::uint64_t>(report_.cells_skipped));
    journal(j);
  }
  obs::RunStatus::global().set_detail_provider(nullptr);
  obs::RunStatus::global().set_phase("idle");
  obs::Logger::global().flush();
  return report_;
}

void Runner::load_prior_state() {
  const JournalState prior = replay_journal(journal_path());
  // Spec-change guard: an edit that alters the expanded grid invalidates the
  // journal's by-id bookkeeping (ids could collide with different configs).
  // Old journals without the field resume unchecked, as before.
  if (prior.saw_start && !prior.grid_crc.empty() &&
      prior.grid_crc != grid_crc_) {
    throw std::invalid_argument(
        "campaign: the spec's expanded grid (crc " + grid_crc_ +
        ") does not match the existing journal (crc " + prior.grid_crc +
        "); resume with the original spec or point state_dir at a fresh "
        "directory");
  }
  for (CellState& cs : cells_) {
    if (prior.done_payload.count(cs.cell.id) != 0) {
      cs.phase = CellPhase::kSkipped;
      ++report_.cells_skipped;
      ++finished_;
      live_->skipped.fetch_add(1);
    } else if (prior.failed.count(cs.cell.id) != 0) {
      // Permanently failed in a previous run: recovery is deterministic, so
      // re-running would fail identically — keep the verdict.
      cs.phase = CellPhase::kFailed;
      ++report_.cells_failed;
      ++finished_;
      live_->failed.fetch_add(1);
    } else {
      if (const auto it = prior.trained.find(cs.cell.id);
          it != prior.trained.end()) {
        cs.train_tsv = it->second;  // resume at the online phase
      }
      queue_ready(cs);
    }
  }
  // Stash the journaled payloads for history reconciliation.
  done_payloads_ = prior.done_payload;
  done_telemetry_ = prior.done_telemetry;
}

void Runner::reconcile_history() {
  // Exactly-once history lines: the WAL "done" record is the commit point;
  // a crash between it and the history append is healed here by re-emitting
  // the missing line with the journaled payload bytes, verbatim.
  std::set<std::string> present;
  {
    std::ifstream in(options_.history_path);
    std::string line;
    while (in && std::getline(in, line)) {
      std::string id;
      if (extract_json_string(line, "cell", id)) present.insert(id);
    }
  }
  for (const CellState& cs : cells_) {
    if (cs.phase != CellPhase::kSkipped) continue;
    if (present.count(cs.cell.id) != 0) continue;
    const auto payload = done_payloads_.find(cs.cell.id);
    if (payload == done_payloads_.end()) continue;
    const auto telemetry = done_telemetry_.find(cs.cell.id);
    append_history(cs, payload->second,
                   telemetry != done_telemetry_.end() ? telemetry->second
                                                      : std::string());
    obs::count("campaign.history_reconciled");
  }
}

void Runner::complete_cell(CellState& cs, const std::string& payload,
                           const std::string& telemetry) {
  journal_event("done", cs, [&] {
    util::JsonBuilder extra;
    extra.raw("payload", payload)
        .raw("telemetry", telemetry.empty() ? "null" : telemetry);
    return extra;
  }());
  append_history(cs, payload, telemetry);
  cs.phase = CellPhase::kDone;
  ++report_.cells_done;
  ++finished_;
  live_->done.fetch_add(1);
  detail_release(cs, /*completed=*/true);
  obs::count("campaign.cells_done");
}

void Runner::fail_attempt(CellState& cs, const std::string& reason,
                          double now) {
  detail_release(cs, /*completed=*/false);
  const int max_attempts = 1 + options_.max_cell_retries;
  if (cs.attempts >= max_attempts) {
    journal_event("failed", cs, [&] {
      util::JsonBuilder extra;
      extra.field("attempts", cs.attempts).field("reason", reason);
      return extra;
    }());
    cs.phase = CellPhase::kFailed;
    ++report_.cells_failed;
    ++finished_;
    live_->failed.fetch_add(1);
    obs::count("campaign.cells_failed");
    obs::log_warn("campaign", "cell permanently failed")
        .field("cell", cs.cell.id)
        .field("index", static_cast<std::uint64_t>(cs.cell.index))
        .field("attempts", cs.attempts)
        .field("reason", reason);
    return;
  }
  // Exponential backoff before the next lease, capped.
  const double delay = std::min(
      options_.backoff_cap_s,
      options_.backoff_base_s * std::pow(2.0, std::max(0, cs.attempts - 1)));
  cs.phase = CellPhase::kBackoff;
  cs.ready_at = now + delay;
  ++report_.retries;
  obs::count("campaign.retries");
}

void Runner::promote_backoffs(double now) {
  for (CellState& cs : cells_) {
    if (cs.phase == CellPhase::kBackoff && now >= cs.ready_at) {
      cs.phase = CellPhase::kPending;
      queue_ready(cs);
    }
  }
}

// --- serial mode -----------------------------------------------------------

void Runner::run_serial() {
  // In-process reference execution: the identical run_cell path the workers
  // use, minus processes — this is what "sharded == serial, bitwise" is
  // measured against.
  while (work_remaining() && !stop_requested_) {
    if (obs::interrupt_requested() ||
        (options_.stop_after_cells > 0 &&
         report_.cells_done + report_.cells_failed >=
             options_.stop_after_cells)) {
      report_.interrupted = true;
      return;
    }
    const double now = mono_s();
    promote_backoffs(now);
    if (ready_.empty()) {
      // Everything live is in backoff; sleep until the earliest expiry.
      double next = now + 1.0;
      for (const CellState& cs : cells_) {
        if (cs.phase == CellPhase::kBackoff) next = std::min(next, cs.ready_at);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.0, next - now)));
      continue;
    }
    CellState& cs = cells_[ready_.begin()->second];
    ready_.erase(ready_.begin());
    ++cs.attempts;
    cs.phase = CellPhase::kLeased;
    live_->in_flight.store(1);
    detail_lease(cs, now);
    journal_event("lease", cs, [&] {
      util::JsonBuilder extra;
      extra.field("attempt", cs.attempts).field("worker", 0);
      return extra;
    }());
    obs::count("campaign.leases");

    CellHooks hooks;
    hooks.resume_train_tsv = cs.train_tsv;
    hooks.snapshot_path = snapshot_path(cs);
    hooks.on_trained = [&](const CellTrainResult& result) {
      cs.train_tsv = encode_train_result(result);
      journal_event("trained", cs, [&] {
        util::JsonBuilder extra;
        extra.field("train", cs.train_tsv);
        return extra;
      }());
    };
    obs::MetricsSnapshot before;
    if (options_.ship_telemetry) {
      before = obs::MetricsRegistry::global().snapshot();
    }
    const CellOutcome outcome = run_cell(cs.cell, hooks);
    if (options_.ship_telemetry) {
      // Fold the cell's delta through the same encode/apply codec the
      // sharded path uses: structurally the same arithmetic, so the
      // campaign.worker.* totals of a completed campaign are bitwise
      // identical for any worker count (run_cell itself never touches the
      // campaign.worker.* names, so there is no double count).
      const std::string delta = obs::encode_metrics_delta(
          before, obs::MetricsRegistry::global().snapshot());
      if (!delta.empty()) obs::apply_metrics_delta(delta, "campaign.worker.");
    }
    live_->in_flight.store(0);
    if (outcome.ok) {
      complete_cell(cs, outcome.payload, outcome.telemetry);
    } else {
      fail_attempt(cs, outcome.fail_kind + ": " + outcome.fail_message,
                   mono_s());
    }
  }
}

// --- sharded mode ----------------------------------------------------------

void Runner::spawn_worker() {
  WorkerSlot w;
  // cmd pipe: parent keeps the write end (CLOEXEC, so no sibling worker
  // inherits it and the child sees EOF the moment the supervisor dies).
  const util::Pipe cmd = util::make_pipe(/*parent_keeps_read=*/false);
  // status pipe: parent keeps the read end.
  const util::Pipe status = util::make_pipe(/*parent_keeps_read=*/true);
  const std::vector<std::string> argv = {
      options_.worker_exe,
      kWorkerFlag,
      std::to_string(cmd.read_fd),
      std::to_string(status.write_fd),
      options_.ship_telemetry ? "1" : "0",
      worker_trace_dir_.empty() ? "-" : worker_trace_dir_};
  w.pid = util::spawn_process(argv);
  util::close_fd(cmd.read_fd);      // child's ends, parent copies
  util::close_fd(status.write_fd);
  w.cmd_fd = cmd.write_fd;
  w.status_fd = status.read_fd;
  util::set_nonblocking(w.status_fd, true);
  w.last_heartbeat = mono_s();
  workers_.push_back(std::move(w));
  live_->workers.fetch_add(1);
}

void Runner::shutdown_workers() {
  for (WorkerSlot& w : workers_) {
    if (w.pid < 0) continue;
    util::write_all(w.cmd_fd, "QUIT\n");
    util::close_fd(w.cmd_fd);  // EOF doubles as quit for a mid-read worker
    w.cmd_fd = -1;
  }
  const double deadline = mono_s() + 2.0;
  for (WorkerSlot& w : workers_) {
    if (w.pid < 0) continue;
    for (;;) {
      // Keep draining while waiting: the quitting worker ships its final
      // OBS delta, which could otherwise fill the pipe and block it from
      // ever reaching exit.
      pump_status(w, mono_s());
      const util::ChildStatus st = util::poll_child(w.pid);
      if (st.state != util::ChildState::kRunning) break;
      if (mono_s() > deadline) {
        util::kill_process(w.pid, SIGKILL);
        util::wait_child(w.pid);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Final drain after exit: without it the tail OBS records die with the
    // pipe and the merged totals miss the last cells (breaking the §16
    // invariance contract).
    pump_status(w, mono_s());
    util::close_fd(w.status_fd);
    w.status_fd = -1;
    w.pid = -1;
  }
  live_->workers.store(0);
  live_->in_flight.store(0);
}

void Runner::assign_ready_cells(double now) {
  for (WorkerSlot& w : workers_) {
    if (ready_.empty()) return;
    if (w.pid < 0 || !w.ready || w.leased >= 0 || w.killing) continue;
    CellState& cs = cells_[ready_.begin()->second];
    ready_.erase(ready_.begin());
    ++cs.attempts;
    cs.phase = CellPhase::kLeased;
    w.leased = static_cast<std::ptrdiff_t>(cs.cell.index);
    w.last_heartbeat = now;
    live_->in_flight.fetch_add(1);
    detail_lease(cs, now);
    journal_event("lease", cs, [&] {
      util::JsonBuilder extra;
      extra.field("attempt", cs.attempts)
          .field("worker", static_cast<std::uint64_t>(w.pid));
      return extra;
    }());
    obs::count("campaign.leases");
    const std::string line =
        "CELL\t" + std::to_string(cs.cell.index) + "\t" +
        std::to_string(cs.attempts) + "\t" + encode_config(cs.cell.config) +
        "\t" + (cs.train_tsv.empty() ? "-" : cs.train_tsv) + "\t" +
        snapshot_path(cs) + "\n";
    if (!util::write_all(w.cmd_fd, line)) {
      // Worker died between spawn and lease; the reaper reclaims the cell.
      obs::log_warn("campaign", "lease write failed; worker presumed dead")
          .field("worker", static_cast<std::uint64_t>(w.pid));
    }
  }
}

void Runner::handle_status_line(WorkerSlot& w, const std::string& line,
                                double now) {
  std::vector<std::string> f;
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == '\t') {
        f.emplace_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
  }
  if (f.empty()) return;
  w.last_heartbeat = now;
  if (f[0] == "READY") {
    w.ready = true;
    return;
  }
  if (f[0] == "OBS" && f.size() >= 2) {
    // Worker registry delta: fold into this process's registry under the
    // campaign.worker.* namespace so /metrics and /runz aggregate live
    // across workers.  Malformed payloads are dropped inside apply.
    obs::apply_metrics_delta(f[1], "campaign.worker.");
    return;
  }
  std::uint64_t index = 0;
  if (f.size() < 2) return;
  index = std::strtoull(f[1].c_str(), nullptr, 10);
  CellState* cs = cell_by_index(index);
  if (cs == nullptr) return;
  if (f[0] == "HB") {
    return;  // the timestamp update above is the whole point
  }
  if (f[0] == "TRAINED" && f.size() >= 3) {
    cs->train_tsv = f[2];
    journal_event("trained", *cs, [&] {
      util::JsonBuilder extra;
      extra.field("train", cs->train_tsv);
      return extra;
    }());
    return;
  }
  if (f[0] == "DONE" && f.size() >= 4) {
    complete_cell(*cs, f[2], f[3]);
    if (w.leased == static_cast<std::ptrdiff_t>(index)) {
      w.leased = -1;
      live_->in_flight.fetch_sub(1);
    }
    return;
  }
  if (f[0] == "FAIL" && f.size() >= 4) {
    fail_attempt(*cs, f[2] + ": " + f[3], now);
    if (w.leased == static_cast<std::ptrdiff_t>(index)) {
      w.leased = -1;
      live_->in_flight.fetch_sub(1);
    }
    return;
  }
}

void Runner::pump_status(WorkerSlot& w, double now) {
  if (w.status_fd < 0) return;
  const bool open = util::read_available(w.status_fd, w.rx);
  std::size_t nl;
  while ((nl = w.rx.find('\n')) != std::string::npos) {
    const std::string line = w.rx.substr(0, nl);
    w.rx.erase(0, nl + 1);
    handle_status_line(w, line, now);
  }
  if (!open) {
    util::close_fd(w.status_fd);
    w.status_fd = -1;  // EOF; the reaper handles the rest
  }
}

void Runner::reap_workers(double now) {
  for (WorkerSlot& w : workers_) {
    if (w.pid < 0) continue;
    const util::ChildStatus st = util::poll_child(w.pid);
    if (st.state == util::ChildState::kRunning) continue;
    // Drain any status lines the worker managed to write before dying
    // (e.g. DONE immediately followed by exit).
    pump_status(w, now);
    const bool signaled = st.state == util::ChildState::kSignaled;
    obs::log_warn("campaign", "worker exited")
        .field("worker", static_cast<std::uint64_t>(w.pid))
        .field("how", signaled ? "signal" : "exit")
        .field("code", st.code);
    if (w.leased >= 0) {
      CellState& cs = cells_[static_cast<std::size_t>(w.leased)];
      const std::string reason =
          w.killing ? "hung"
                    : (signaled ? "died: signal " + std::to_string(st.code)
                                : "died: exit " + std::to_string(st.code));
      journal_event("reclaim", cs, [&] {
        util::JsonBuilder extra;
        extra.field("attempt", cs.attempts).field("reason", reason);
        return extra;
      }());
      fail_attempt(cs, reason, now);
      ++report_.reclaims;
      // Latency of this reclaim: death observation -> cell requeued.  The
      // whole sequence (journal append + bookkeeping) happens inline here.
      reclaim_latency_ns_sum_ += (mono_s() - now) * 1e9;
      obs::count("campaign.reclaims");
      live_->in_flight.fetch_sub(1);
      w.leased = -1;
    }
    util::close_fd(w.cmd_fd);
    util::close_fd(w.status_fd);
    w.cmd_fd = w.status_fd = -1;
    w.pid = -1;
    w.ready = false;
    live_->workers.fetch_sub(1);
  }
  // Respawn up to the configured width while leasable work remains.
  std::erase_if(workers_, [](const WorkerSlot& w) { return w.pid < 0; });
  std::size_t leasable = ready_.size();
  for (const CellState& cs : cells_) {
    if (cs.phase == CellPhase::kBackoff) ++leasable;
  }
  while (workers_.size() < options_.workers &&
         workers_.size() < leasable + live_->in_flight.load()) {
    spawn_worker();
    ++report_.worker_restarts;
    obs::count("campaign.worker_restarts");
  }
}

void Runner::run_watchdog(double now) {
  for (WorkerSlot& w : workers_) {
    if (w.pid < 0 || w.leased < 0 || w.killing) continue;
    if (now - w.last_heartbeat > options_.cell_timeout_s) {
      obs::log_warn("campaign", "heartbeat stale; killing worker")
          .field("worker", static_cast<std::uint64_t>(w.pid))
          .field("cell", cells_[static_cast<std::size_t>(w.leased)].cell.id)
          .field("stale_s", now - w.last_heartbeat);
      w.killing = true;
      util::kill_process(w.pid, SIGKILL);
      obs::count("campaign.watchdog_kills");
    }
  }
}

void Runner::run_sharded() {
  // A worker death mid-write must surface as EPIPE on write(2), not as a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  const std::size_t width = std::min(options_.workers, ready_.size());
  for (std::size_t i = 0; i < width; ++i) spawn_worker();

  while (work_remaining()) {
    if (obs::interrupt_requested() ||
        (options_.stop_after_cells > 0 &&
         report_.cells_done + report_.cells_failed >=
             options_.stop_after_cells)) {
      report_.interrupted = true;
      break;
    }
    double now = mono_s();
    promote_backoffs(now);
    assign_ready_cells(now);

    // Sleep on the status pipes: wakes early on any worker message.
    std::vector<pollfd> fds;
    fds.reserve(workers_.size());
    for (const WorkerSlot& w : workers_) {
      if (w.status_fd >= 0) {
        fds.push_back(pollfd{w.status_fd, POLLIN, 0});
      }
    }
    const int timeout_ms =
        std::max(1, static_cast<int>(options_.poll_interval_s * 1000.0));
    if (!fds.empty()) {
      ::poll(fds.data(), fds.size(), timeout_ms);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_interval_s));
    }

    now = mono_s();
    for (WorkerSlot& w : workers_) pump_status(w, now);
    reap_workers(now);
    run_watchdog(now);
  }
  shutdown_workers();
}

void Runner::gc_state_dir() {
  // Completed campaign: snapshots and retry checkpoints have served their
  // purpose; a bounded number of stragglers is kept for post-mortems.
  core::CheckpointManager::gc_directory(cells_dir(), ".model", 0);
  core::CheckpointManager::gc_directory(cells_dir(), ".model.ckpt", 0);
  core::CheckpointManager::gc_directory(cells_dir(), ".tmp", 0);
}

}  // namespace

std::string CampaignReport::to_json() const {
  util::JsonBuilder j;
  j.field("cells_total", static_cast<std::uint64_t>(cells_total))
      .field("cells_done", static_cast<std::uint64_t>(cells_done))
      .field("cells_failed", static_cast<std::uint64_t>(cells_failed))
      .field("cells_skipped", static_cast<std::uint64_t>(cells_skipped))
      .field("retries", static_cast<std::uint64_t>(retries))
      .field("reclaims", static_cast<std::uint64_t>(reclaims))
      .field("worker_restarts", static_cast<std::uint64_t>(worker_restarts))
      .field("interrupted", interrupted)
      .field("complete", complete())
      .field("reclaim_latency_ns_mean", reclaim_latency_ns_mean)
      .field("seconds", seconds);
  return j.str();
}

Supervisor::Supervisor(CampaignSpec spec, SupervisorOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

CampaignReport Supervisor::run() {
  Runner runner(spec_, options_);
  return runner.run();
}

}  // namespace mldist::campaign
