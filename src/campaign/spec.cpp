#include "campaign/spec.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/crc32.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace mldist::campaign {

namespace {

constexpr char kSep = '\x1f';  // ASCII unit separator

std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::vector<std::string> split_fields(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == kSep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_f64(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

bool parse_i32(const std::string& s, int& out) {
  std::uint64_t v = 0;
  const bool neg = !s.empty() && s[0] == '-';
  if (!parse_u64(neg ? s.substr(1) : s, v)) return false;
  out = static_cast<int>(v);
  if (neg) out = -out;
  return true;
}

}  // namespace

std::string cell_id(const core::ExperimentConfig& config) {
  core::ExperimentConfig keyed = config;
  keyed.checkpoint_path.clear();  // ids must not depend on the state dir
  const std::string json = keyed.to_json();
  const std::uint32_t crc = util::crc32(json.data(), json.size());
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

void CellOverrides::apply(core::ExperimentConfig& config) const {
  if (epochs) config.epochs = *epochs;
  if (batch_size) config.batch_size = *batch_size;
  if (learning_rate) config.learning_rate = *learning_rate;
  if (validation_fraction) config.validation_fraction = *validation_fraction;
  if (z_threshold) config.z_threshold = *z_threshold;
  if (online_base_inputs) config.online_base_inputs = *online_base_inputs;
  if (games) config.games = *games;
  if (max_retries) config.max_retries = *max_retries;
}

namespace {
template <typename T>
std::vector<T> or_default(const std::vector<T>& axis, const T& fallback) {
  return axis.empty() ? std::vector<T>{fallback} : axis;
}

void expand_block(const GridBlock& block, const CampaignSpec& spec,
                  std::vector<Cell>& cells) {
  core::ExperimentConfig base = spec.base;
  block.overrides.apply(base);
  const auto targets = or_default(block.targets, base.target);
  const auto rounds = or_default(block.rounds, base.rounds);
  const auto archs = or_default(block.archs, base.arch);
  const auto sites = or_default(block.diff_sites, base.diff_site);
  const auto diff_sets = or_default(block.diff_sets, base.diffs);
  const auto budgets = or_default(block.offline_budgets,
                                  base.offline_base_inputs);
  for (const std::string& target : targets) {
    for (int r : rounds) {
      for (const std::string& arch : archs) {
        for (const std::string& site : sites) {
          for (const auto& diffs : diff_sets) {
            for (std::size_t budget : budgets) {
              Cell cell;
              cell.index = cells.size();
              cell.config = base;
              cell.config.target = target;
              cell.config.rounds = r;
              cell.config.arch = arch;
              cell.config.diff_site = site;
              cell.config.diffs = diffs;
              cell.config.offline_base_inputs = budget;
              cell.config.seed =
                  util::derive_stream_seed(spec.seed, cell.index);
              cell.config.on_epoch = nullptr;
              cell.id = cell_id(cell.config);
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
}
}  // namespace

std::vector<Cell> expand_grid(const CampaignSpec& spec) {
  std::vector<Cell> cells;
  if (!spec.blocks.empty()) {
    for (const GridBlock& block : spec.blocks) {
      expand_block(block, spec, cells);
    }
    return cells;
  }
  // Legacy single-block axes (the CLI's --targets/--rounds-list/--archs).
  GridBlock block;
  block.targets = spec.targets;
  block.rounds = spec.rounds;
  block.archs = spec.archs;
  expand_block(block, spec, cells);
  return cells;
}

std::string grid_crc(const std::vector<Cell>& cells) {
  std::string all;
  all.reserve(cells.size() * 9);
  for (const Cell& cell : cells) {
    all += cell.id;
    all += '\n';
  }
  const std::uint32_t crc = util::crc32(all.data(), all.size());
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

double cell_cost(const core::ExperimentConfig& config) {
  // Unitless relative work estimate: offline rows dominate ((1 + epochs)
  // passes over offline_base_inputs * t rows), plus the online games.  The
  // arch weight approximates per-row inference/backprop cost relative to
  // the default MLP.
  double arch_weight = 1.0;
  const std::string& a = config.arch;
  if (a.rfind("gohr-net/", 0) == 0) {
    // Checked parse: an unparseable depth ("gohr-net/d=x") is rejected
    // elsewhere before any cell runs, but the cost model must not silently
    // read it as depth 0 — fall back to a conservative mid-range weight so
    // scheduling stays sane even for names that slip through.
    double depth = 0.0;
    arch_weight = parse_f64(a.substr(9), depth) ? 4.0 + 2.0 * depth : 10.0;
  } else if (a.rfind("LSTM", 0) == 0) {
    arch_weight = 10.0;
  } else if (a.rfind("CNN", 0) == 0) {
    arch_weight = 6.0;
  } else if (a == "MLP III" || a == "MLP VI") {
    arch_weight = 3.0;  // the 1.2M-parameter zoo members
  }
  const double t =
      config.diffs.empty() ? 2.0 : static_cast<double>(config.diffs.size());
  const double offline_rows =
      static_cast<double>(config.offline_base_inputs) * t;
  const double online_rows = static_cast<double>(config.online_base_inputs) *
                             t * static_cast<double>(config.games);
  return arch_weight * (offline_rows * (1.0 + config.epochs)) + online_rows;
}

std::string encode_config(const core::ExperimentConfig& c) {
  std::string out;
  const auto add = [&](const std::string& field) {
    if (!out.empty()) out += kSep;
    out += field;
  };
  add(c.target);
  add(std::to_string(c.rounds));
  add(c.diff_site);
  {
    std::string diffs;
    for (std::size_t i = 0; i < c.diffs.size(); ++i) {
      if (i > 0) diffs += ',';
      char buf[24];
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(c.diffs[i]));
      diffs += buf;
    }
    add(diffs);
  }
  add(c.arch);
  add(std::to_string(c.epochs));
  add(std::to_string(c.batch_size));
  add(hexf(static_cast<double>(c.learning_rate)));
  add(hexf(c.validation_fraction));
  add(hexf(c.z_threshold));
  add(std::to_string(c.seed));
  add(std::to_string(c.threads));
  add(std::to_string(c.offline_base_inputs));
  add(std::to_string(c.online_base_inputs));
  add(std::to_string(c.games));
  add(std::to_string(c.max_retries));
  add(hexf(static_cast<double>(c.lr_backoff)));
  add(c.checkpoint_path);
  return out;
}

bool decode_config(const std::string& text, core::ExperimentConfig& out) {
  const std::vector<std::string> f = split_fields(text);
  if (f.size() != 18) return false;
  core::ExperimentConfig c;
  std::uint64_t u = 0;
  double d = 0.0;
  c.target = f[0];
  if (!parse_i32(f[1], c.rounds)) return false;
  c.diff_site = f[2];
  c.diffs.clear();
  if (!f[3].empty()) {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= f[3].size(); ++i) {
      if (i == f[3].size() || f[3][i] == ',') {
        if (!parse_u64(f[3].substr(start, i - start), u)) return false;
        c.diffs.push_back(u);
        start = i + 1;
      }
    }
  }
  c.arch = f[4];
  if (!parse_i32(f[5], c.epochs)) return false;
  if (!parse_u64(f[6], u)) return false;
  c.batch_size = static_cast<std::size_t>(u);
  if (!parse_f64(f[7], d)) return false;
  c.learning_rate = static_cast<float>(d);
  if (!parse_f64(f[8], c.validation_fraction)) return false;
  if (!parse_f64(f[9], c.z_threshold)) return false;
  if (!parse_u64(f[10], c.seed)) return false;
  if (!parse_u64(f[11], u)) return false;
  c.threads = static_cast<std::size_t>(u);
  if (!parse_u64(f[12], u)) return false;
  c.offline_base_inputs = static_cast<std::size_t>(u);
  if (!parse_u64(f[13], u)) return false;
  c.online_base_inputs = static_cast<std::size_t>(u);
  if (!parse_u64(f[14], u)) return false;
  c.games = static_cast<std::size_t>(u);
  if (!parse_i32(f[15], c.max_retries)) return false;
  if (!parse_f64(f[16], d)) return false;
  c.lr_backoff = static_cast<float>(d);
  c.checkpoint_path = f[17];
  out = std::move(c);
  return true;
}

std::string encode_train_result(const CellTrainResult& r) {
  std::string out;
  const auto add = [&](const std::string& field) {
    if (!out.empty()) out += kSep;
    out += field;
  };
  add(hexf(r.report.train_accuracy));
  add(hexf(r.report.val_accuracy));
  add(hexf(r.report.train_loss));
  add(std::to_string(r.report.samples));
  add(hexf(r.report.log2_data));
  add(r.report.usable ? "1" : "0");
  add(std::to_string(r.report.robustness.attempts));
  add(std::to_string(r.report.robustness.divergences));
  add(std::to_string(r.report.robustness.rollbacks));
  add(std::to_string(r.t));
  add(hexf(r.best_val));
  return out;
}

bool decode_train_result(const std::string& text, CellTrainResult& out) {
  const std::vector<std::string> f = split_fields(text);
  if (f.size() != 11) return false;
  CellTrainResult r;
  std::uint64_t u = 0;
  if (!parse_f64(f[0], r.report.train_accuracy)) return false;
  if (!parse_f64(f[1], r.report.val_accuracy)) return false;
  if (!parse_f64(f[2], r.report.train_loss)) return false;
  if (!parse_u64(f[3], u)) return false;
  r.report.samples = static_cast<std::size_t>(u);
  if (!parse_f64(f[4], r.report.log2_data)) return false;
  if (f[5] != "0" && f[5] != "1") return false;
  r.report.usable = f[5] == "1";
  if (!parse_i32(f[6], r.report.robustness.attempts)) return false;
  if (!parse_i32(f[7], r.report.robustness.divergences)) return false;
  if (!parse_i32(f[8], r.report.robustness.rollbacks)) return false;
  if (!parse_u64(f[9], u)) return false;
  r.t = static_cast<std::size_t>(u);
  if (!parse_f64(f[10], r.best_val)) return false;
  out = std::move(r);
  return true;
}

const char* verdict_name(core::Verdict verdict) {
  switch (verdict) {
    case core::Verdict::kCipher: return "cipher";
    case core::Verdict::kRandom: return "random";
    case core::Verdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

std::string cell_payload_json(const Cell& cell,
                              const core::TrainReport& train,
                              const core::OnlineReport* online) {
  core::ExperimentConfig rendered = cell.config;
  rendered.checkpoint_path.clear();  // execution detail, not cell identity
  util::JsonBuilder t;
  t.field("train_accuracy", train.train_accuracy)
      .field("val_accuracy", train.val_accuracy)
      .field("train_loss", train.train_loss)
      .field("samples", train.samples)
      .field("log2_data", train.log2_data)
      .field("usable", train.usable)
      .field("attempts", train.robustness.attempts)
      .field("divergences", train.robustness.divergences)
      .field("rollbacks", train.robustness.rollbacks);
  util::JsonBuilder j;
  j.field("cell", cell.id)
      .field("index", static_cast<std::uint64_t>(cell.index))
      .raw("config", rendered.to_json())
      .raw("train", t.str());
  if (online != nullptr) {
    util::JsonBuilder o;
    o.field("accuracy", online->accuracy)
        .field("samples", online->samples)
        .field("log2_data", online->log2_data)
        .field("z_vs_random", online->z_vs_random)
        .field("verdict", verdict_name(online->verdict));
    j.raw("online", o.str());
  } else {
    j.raw("online", "null");
  }
  return j.str();
}

std::string cell_telemetry_json(const core::TrainReport& train,
                                const core::OnlineReport* online) {
  util::JsonBuilder j;
  j.raw("collect", train.collect.to_json())
      .raw("fit", train.fit.to_json())
      .field("seconds_per_epoch", train.seconds_per_epoch);
  if (online != nullptr) {
    j.raw("online_collect", online->collect.to_json())
        .raw("predict", online->predict.to_json());
  }
  return j.str();
}

}  // namespace mldist::campaign
