// The campaign write-ahead log (ISSUE 7): campaign.state.jsonl.
//
// Every state transition the supervisor commits — lease, trained, done,
// reclaim, failed, interrupted — is one appended JSON line (via
// util::append_jsonl, whose O_APPEND single-write(2) contract keeps records
// whole under concurrency).  "Write-ahead" in the recovery sense: a cell
// only counts as finished once its "done" record (carrying the full pinned
// payload) is on the WAL; the history.jsonl line is derived from it, so a
// supervisor killed between the two reconciles by re-emitting history from
// the WAL — never by re-running the cell.
//
// Replay is consumer-side field extraction, the same stance as
// tools/bench_compare: the library still only *writes* JSON (util/json is a
// builder, not a parser), and the three extract_* helpers below pull the
// handful of keys replay needs out of lines this module itself wrote.  They
// are not a general JSON parser and don't try to be.
//
// Record shapes (one per line, "event" first):
//   {"event":"start","campaign":...,"cells":N,"seed":S,"grid":"crc",
//    "manifest":{...}}
//   {"event":"lease","cell":"id","index":n,"attempt":k,"worker":pid}
//   {"event":"trained","cell":"id","index":n,"train":"<0x1f-record>"}
//   {"event":"done","cell":"id","index":n,"payload":{...},"telemetry":{...}}
//   {"event":"reclaim","cell":"id","index":n,"attempt":k,"reason":"died|
//    hung|diverged|error","latency_ns":L}
//   {"event":"failed","cell":"id","index":n,"attempts":k,"reason":...}
//   {"event":"interrupted"}   {"event":"end","done":D,"failed":F}
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace mldist::campaign {

/// Extract a string value for `key` from a flat JSON object this module
/// wrote (no whitespace between tokens), unescaping \" \\ \/ \b \f \n \r
/// \t and \uXXXX (BMP, rendered as UTF-8).  False when the key is absent
/// or not a string.
bool extract_json_string(const std::string& json, const std::string& key,
                         std::string& out);

/// Extract an unsigned integer value for `key`.
bool extract_json_u64(const std::string& json, const std::string& key,
                      std::uint64_t& out);

/// Extract the raw balanced-brace object value for `key` (verbatim
/// substring including the outer braces — this is what makes payload
/// pinning bitwise: the bytes come back exactly as journaled).
bool extract_json_object(const std::string& json, const std::string& key,
                         std::string& out);

/// Everything a relaunched supervisor needs to know about prior progress,
/// keyed by cell id.
struct JournalState {
  std::map<std::string, std::string> done_payload;    ///< pinned payload JSON
  std::map<std::string, std::string> done_telemetry;  ///< sidecar JSON
  std::set<std::string> failed;                       ///< permanently failed
  /// Cells whose offline phase was journaled (encode_train_result record):
  /// resumable from the model snapshot without retraining.
  std::map<std::string, std::string> trained;
  bool saw_start = false;
  /// The expanded grid's fingerprint from the latest "start" record (see
  /// campaign::grid_crc).  Empty for journals written before the field
  /// existed — those resume without the spec-change check.
  std::string grid_crc;
};

/// Replay `path` (missing file = empty state).  Later records win: a
/// "done" after a "trained" clears the trained entry; a torn final line
/// (crash mid-append cannot happen under append_jsonl's contract, but a
/// full disk can truncate) is skipped.
JournalState replay_journal(const std::string& path);

}  // namespace mldist::campaign
