// Campaign grid specification (ISSUE 7): the declarative record for a full
// target × rounds × architecture sweep, expanded into Cells — one
// core::ExperimentConfig per grid point.
//
// Determinism contract: a cell's results are a pure function of its config.
// Each cell's seed is derived from the campaign seed and the cell *index*
// (util::derive_stream_seed, the same stream-derivation the parallel data
// engine uses) — never from the worker that happens to run it — so any
// sharding, any retry and any crash/recovery schedule produces bitwise
// identical payloads.  cell_payload_json() renders only deterministic
// fields (accuracies, sample counts, z-scores, verdicts); wall-clock
// telemetry travels in a separate, unpinned JSON object.
//
// The wire codecs (encode_config/encode_train_result) exist because cells
// cross a process boundary: the supervisor sends a cell's config to a
// worker over a pipe and journals the worker's train result in the WAL.
// Fields are separated by 0x1f (ASCII unit separator — cannot appear in
// target/arch names or paths we mint) and floating-point values are
// rendered as C99 hex-floats ("%a"), so a value decoded on the other side
// is bit-identical to the one encoded: resumed runs cannot drift by a ULP
// through a decimal round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/distinguisher.hpp"
#include "core/experiment.hpp"

namespace mldist::campaign {

/// Per-block hyper-parameter overrides (ISSUE 8): applied on top of the
/// campaign base config before the block's axes are stamped.  A block of
/// one grid point makes these per-cell overrides.
struct CellOverrides {
  std::optional<int> epochs;
  std::optional<std::size_t> batch_size;
  std::optional<float> learning_rate;
  std::optional<double> validation_fraction;
  std::optional<double> z_threshold;
  std::optional<std::size_t> online_base_inputs;
  std::optional<std::size_t> games;
  std::optional<int> max_retries;

  void apply(core::ExperimentConfig& config) const;
};

/// One block of the declarative grid: the cross product of its axes.  Empty
/// axes fall back to the (override-patched) base config's value, so a block
/// listing only targets sweeps one cell per target.
struct GridBlock {
  std::vector<std::string> targets;  ///< core::make_target names
  std::vector<int> rounds;
  std::vector<std::string> archs;
  std::vector<std::string> diff_sites;  ///< "plaintext" / "related-key"
  /// Each entry is one set of t difference specifiers ({} = target default).
  std::vector<std::vector<std::uint64_t>> diff_sets;
  std::vector<std::size_t> offline_budgets;  ///< offline_base_inputs sweeps
  CellOverrides overrides;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> targets;  ///< legacy single-block axes (CLI flags)
  std::vector<int> rounds;
  std::vector<std::string> archs;
  /// Declarative grid blocks (spec files).  When non-empty these replace
  /// the legacy axes above; expand_grid() concatenates the blocks in order.
  std::vector<GridBlock> blocks;
  /// Everything the grid axes don't override (budgets, epochs, threads...).
  core::ExperimentConfig base;
  /// Campaign master seed; cell i runs with derive_stream_seed(seed, i).
  std::uint64_t seed = 0xca3fa16eULL;
};

struct Cell {
  std::size_t index = 0;  ///< position in the expanded grid
  /// 8-hex CRC-32 of the cell config's JSON (checkpoint_path cleared, so
  /// the id is stable across state directories): the WAL / history /
  /// snapshot-file key for this cell.
  std::string id;
  core::ExperimentConfig config;
};

/// Expand the grid, deriving each cell's seed and id.  Legacy axes expand
/// row-major target > rounds > arch; spec-file blocks expand in block order,
/// each row-major target > rounds > arch > diff_site > diff_set > budget,
/// with cell indices global across blocks.  Empty axes fall back to the
/// base config's value.
std::vector<Cell> expand_grid(const CampaignSpec& spec);

/// The stable cell id for `config` (CRC-32 of its JSON with checkpoint_path
/// cleared).
std::string cell_id(const core::ExperimentConfig& config);

/// 8-hex CRC-32 over the expanded grid's cell ids (in index order): the
/// fingerprint journaled in the WAL "start" record so a resume against a
/// spec edit that changed the grid is rejected instead of silently mixing
/// two campaigns' cells.
std::string grid_crc(const std::vector<Cell>& cells);

/// Deterministic relative cost estimate for one cell — sample budget ×
/// epochs × an architecture weight × the class count.  Unitless; the
/// supervisor leases expensive cells first and converts completed cost per
/// wall-clock second into per-cell ETAs for /runz.
double cell_cost(const core::ExperimentConfig& config);

/// ExperimentConfig <-> 0x1f-separated record with hex-float reals.
/// decode returns false (leaving `out` unspecified) on a malformed record.
std::string encode_config(const core::ExperimentConfig& config);
bool decode_config(const std::string& text, core::ExperimentConfig& out);

/// The deterministic outcome of a cell's offline phase, as journaled after
/// the worker snapshots its trained model: enough to adopt_train_report()
/// in a different process and rerun only the online phase.
struct CellTrainResult {
  core::TrainReport report;  ///< telemetry/timing fields are not carried
  std::size_t t = 0;         ///< class count the report was produced with
  double best_val = 0.0;     ///< checkpoint manager's recorded best
};

std::string encode_train_result(const CellTrainResult& result);
bool decode_train_result(const std::string& text, CellTrainResult& out);

/// The pinned per-cell result object: deterministic fields only, config
/// rendered with checkpoint_path cleared.  Bitwise identical across worker
/// counts, retries and crash/resume schedules.  `online` may be null (cell
/// trained but was not usable, so Algorithm 2 aborted before the online
/// phase).
std::string cell_payload_json(const Cell& cell,
                              const core::TrainReport& train,
                              const core::OnlineReport* online);

/// The unpinned sidecar: wall-clock/throughput telemetry of this particular
/// execution of the cell.
std::string cell_telemetry_json(const core::TrainReport& train,
                                const core::OnlineReport* online);

const char* verdict_name(core::Verdict verdict);

}  // namespace mldist::campaign
