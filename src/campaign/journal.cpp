#include "campaign/journal.hpp"

#include <cctype>
#include <fstream>

namespace mldist::campaign {

namespace {

/// Position just past `"key":` in `json`, or npos.  Keys this module emits
/// never need escaping, so a literal search for the quoted key is exact.
std::size_t value_offset(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

}  // namespace

bool extract_json_string(const std::string& json, const std::string& key,
                         std::string& out) {
  std::size_t i = value_offset(json, key);
  if (i == std::string::npos || i >= json.size() || json[i] != '"') {
    return false;
  }
  ++i;
  std::string value;
  while (i < json.size()) {
    const char c = json[i];
    if (c == '"') {
      out = std::move(value);
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= json.size()) return false;
      const char e = json[i + 1];
      switch (e) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'b': value += '\b'; break;
        case 'f': value += '\f'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          if (i + 5 >= json.size()) return false;
          unsigned cp = 0;
          for (int k = 2; k <= 5; ++k) {
            const int d = hex_digit(json[i + k]);
            if (d < 0) return false;
            cp = (cp << 4) | static_cast<unsigned>(d);
          }
          append_utf8(value, cp);
          i += 4;
          break;
        }
        default:
          return false;
      }
      i += 2;
      continue;
    }
    value += c;
    ++i;
  }
  return false;
}

bool extract_json_u64(const std::string& json, const std::string& key,
                      std::uint64_t& out) {
  std::size_t i = value_offset(json, key);
  if (i == std::string::npos || i >= json.size() ||
      !std::isdigit(static_cast<unsigned char>(json[i]))) {
    return false;
  }
  std::uint64_t value = 0;
  while (i < json.size() && std::isdigit(static_cast<unsigned char>(json[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(json[i] - '0');
    ++i;
  }
  out = value;
  return true;
}

bool extract_json_object(const std::string& json, const std::string& key,
                         std::string& out) {
  const std::size_t start = value_offset(json, key);
  if (start == std::string::npos || start >= json.size() ||
      json[start] != '{') {
    return false;
  }
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped char; \uXXXX digits contain no quotes
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        out = json.substr(start, i - start + 1);
        return true;
      }
    }
  }
  return false;
}

JournalState replay_journal(const std::string& path) {
  JournalState state;
  std::ifstream in(path);
  if (!in) return state;
  std::string line;
  while (std::getline(in, line)) {
    std::string event;
    if (!extract_json_string(line, "event", event)) continue;
    if (event == "start") {
      state.saw_start = true;
      extract_json_string(line, "grid", state.grid_crc);
      continue;
    }
    std::string cell;
    if (event == "trained") {
      std::string record;
      if (extract_json_string(line, "cell", cell) &&
          extract_json_string(line, "train", record)) {
        state.trained[cell] = std::move(record);
      }
    } else if (event == "done") {
      std::string payload;
      if (extract_json_string(line, "cell", cell) &&
          extract_json_object(line, "payload", payload)) {
        std::string telemetry;
        extract_json_object(line, "telemetry", telemetry);
        state.done_payload[cell] = std::move(payload);
        state.done_telemetry[cell] = std::move(telemetry);
        state.trained.erase(cell);
        state.failed.erase(cell);
      }
    } else if (event == "failed") {
      if (extract_json_string(line, "cell", cell)) {
        state.failed.insert(cell);
      }
    }
  }
  return state;
}

}  // namespace mldist::campaign
