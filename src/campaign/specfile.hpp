// Declarative campaign spec files (ISSUE 8): the JSON front end that turns
// one committed file into a full CampaignSpec — cipher × rounds ×
// input/related-key differences × architecture × sample budgets, with
// per-block hyper-parameter overrides (see examples/paper_grid.json and
// EXPERIMENTS.md for the schema walkthrough).
//
// This is deliberately the repo's only JSON *parser*.  util::json stays a
// builder: artifacts are write-only, but a spec file is human-authored
// input, so errors must carry file/line context ("paper_grid.json:17:
// unknown key 'epoch' in overrides ...") instead of a byte offset.
#pragma once

#include <stdexcept>
#include <string>

#include "campaign/spec.hpp"

namespace mldist::campaign {

/// Spec-file rejection with file/line context.  Derives from
/// std::invalid_argument so the CLI maps it onto the config-error exit
/// code like every other bad-flag failure.
class SpecError : public std::invalid_argument {
 public:
  SpecError(const std::string& origin, int line, const std::string& message);
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse spec-file text.  `origin` names the source in error messages.
CampaignSpec parse_spec_text(const std::string& text,
                             const std::string& origin = "<spec>");

/// Read and parse a spec file; throws std::runtime_error if unreadable and
/// SpecError on schema violations.
CampaignSpec load_spec_file(const std::string& path);

}  // namespace mldist::campaign
