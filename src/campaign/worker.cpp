#include "campaign/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>

#include "core/oracle.hpp"
#include "core/targets.hpp"
#include "nn/serialize.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/ship.hpp"
#include "obs/signal.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"

namespace mldist::campaign {

const char kWorkerFlag[] = "--mldist-campaign-worker";

namespace {

/// One line, tabs/newlines flattened so it can ride a tab-framed protocol
/// message.
std::string sanitize_message(std::string text) {
  for (char& c : text) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

CellOutcome run_cell(const Cell& cell, const CellHooks& hooks) {
  CellOutcome out;
  const auto hb = [&](const char* phase, int epoch) {
    if (hooks.heartbeat) hooks.heartbeat(phase, epoch);
  };
  try {
    core::ExperimentConfig config = cell.config;
    if (!hooks.snapshot_path.empty()) {
      // Keep the retry checkpoints next to the snapshot (inside the state
      // dir) instead of scattering auto temp files.
      config.checkpoint_path = hooks.snapshot_path + ".ckpt";
    }
    config.on_epoch = [&](const nn::EpochStats& s) { hb("fit", s.epoch); };
    const std::unique_ptr<core::Target> target = config.make_target();

    core::DistinguisherOptions options(config);
    std::unique_ptr<core::MLDistinguisher> dist;
    core::TrainReport train;
    bool resumed = false;

    if (!hooks.resume_train_tsv.empty() && !hooks.snapshot_path.empty()) {
      // Phase-granular resume: a previous attempt journaled its offline
      // result and snapshotted the trained parameters.  Restoring the
      // snapshot (exact f32 round-trip, CRC-checked) and adopting the
      // hex-float-exact train report reproduces the distinguisher state an
      // uninterrupted run would be in right after train() — only the
      // (deterministic) online phase is re-run.
      CellTrainResult recorded;
      if (decode_train_result(hooks.resume_train_tsv, recorded) &&
          recorded.t == target->num_differences()) {
        hb("resume", 0);
        auto model = config.make_model(*target);
        auto candidate =
            std::make_unique<core::MLDistinguisher>(std::move(model), options);
        try {
          nn::load_params(candidate->model(), hooks.snapshot_path);
          candidate->adopt_train_report(recorded.report, recorded.t);
          train = recorded.report;
          dist = std::move(candidate);
          resumed = true;
          obs::count("campaign.cells_resumed");
        } catch (const std::exception& e) {
          // Missing or corrupt snapshot: fall back to a full (and equally
          // deterministic) retrain.
          obs::log_warn("campaign.worker",
                        "snapshot restore failed; retraining")
              .field("cell", cell.id)
              .field("error", e.what());
        }
      }
    }

    if (!resumed) {
      hb("train", 0);
      dist = std::make_unique<core::MLDistinguisher>(
          config.make_model(*target), options);
      train = dist->train(*target, config.offline_base_inputs);
      if (dist->degraded()) {
        // Retries inside train() are exhausted; surface the divergence to
        // the supervisor's (process-level) retry budget instead of
        // publishing a baseline-classifier payload.
        out.fail_kind = "diverged";
        out.fail_message = sanitize_message(
            train.robustness.last_fault.empty()
                ? "training diverged; retries exhausted"
                : train.robustness.last_fault);
        std::filesystem::remove(config.checkpoint_path);
        return out;
      }
      if (!hooks.snapshot_path.empty()) {
        // Durable snapshot publish (fsync'd tmp + rename): the supervisor
        // only trusts this file once the TRAINED record it journals from
        // on_trained is on the WAL, so a crash mid-write is harmless.
        const std::string tmp = hooks.snapshot_path + ".tmp";
        nn::save_params(dist->model(), tmp);
        util::fsync_file(tmp);
        std::filesystem::rename(tmp, hooks.snapshot_path);
        util::fsync_parent_dir(hooks.snapshot_path);
      }
      if (hooks.on_trained) {
        CellTrainResult result;
        result.report = train;
        result.t = target->num_differences();
        result.best_val = train.val_accuracy;
        hooks.on_trained(result);
      }
    }
    if (!config.checkpoint_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config.checkpoint_path, ec);
      std::filesystem::remove(config.checkpoint_path + ".tmp", ec);
    }

    const core::OnlineReport* online_ptr = nullptr;
    core::OnlineReport online;
    if (train.usable) {
      hb("online", 0);
      const core::CipherOracle oracle(*target);
      online = dist->test(oracle, config.online_base_inputs);
      online_ptr = &online;
    }
    out.payload = cell_payload_json(cell, train, online_ptr);
    out.telemetry = cell_telemetry_json(train, online_ptr);
    out.ok = true;
    return out;
  } catch (const std::exception& e) {
    out.ok = false;
    out.fail_kind = "error";
    out.fail_message = sanitize_message(e.what());
    return out;
  } catch (...) {
    out.ok = false;
    out.fail_kind = "error";
    out.fail_message = "unknown exception";
    return out;
  }
}

namespace {

struct ChaosConfig {
  bool kill_enabled = false;
  int kill_pct = 0;
  std::uint64_t kill_seed = 0;
  int kill_max_attempt = 0;
  bool hang_enabled = false;
  std::size_t hang_index = 0;
  int hang_attempt = 0;
  std::set<std::size_t> diverge;
};

ChaosConfig read_chaos_env() {
  ChaosConfig chaos;
  if (const char* env = std::getenv("MLDIST_CHAOS_KILL");
      env != nullptr && env[0] != '\0') {
    int pct = 0, max_attempt = 0;
    unsigned long long seed = 0;
    if (std::sscanf(env, "p=%d,seed=%llu,max=%d", &pct, &seed,
                    &max_attempt) == 3) {
      chaos.kill_enabled = true;
      chaos.kill_pct = pct;
      chaos.kill_seed = seed;
      chaos.kill_max_attempt = max_attempt;
    }
  }
  if (const char* env = std::getenv("MLDIST_CHAOS_HANG");
      env != nullptr && env[0] != '\0') {
    unsigned long long index = 0;
    int attempt = 0;
    if (std::sscanf(env, "%llu:%d", &index, &attempt) == 2) {
      chaos.hang_enabled = true;
      chaos.hang_index = static_cast<std::size_t>(index);
      chaos.hang_attempt = attempt;
    }
  }
  if (const char* env = std::getenv("MLDIST_CHAOS_DIVERGE");
      env != nullptr && env[0] != '\0') {
    const char* p = env;
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(p, &end, 10);
      if (end == p) break;
      chaos.diverge.insert(static_cast<std::size_t>(v));
      p = *end == ',' ? end + 1 : end;
    }
  }
  return chaos;
}

/// Blocking read of one '\n'-terminated line from `fd` (buffered in `buf`
/// across calls).  False on EOF/error with no complete line.
bool read_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      if (obs::interrupt_requested()) return false;
      continue;
    }
    return false;  // EOF or hard error: the supervisor is gone
  }
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      out.emplace_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

int worker_entry(int argc, char** argv) {
  if (argc < 4 || std::strcmp(argv[1], kWorkerFlag) != 0) return -1;
  const int cmd_fd = std::atoi(argv[2]);
  const int status_fd = std::atoi(argv[3]);
  // Optional trailing argv (absent when an old-style 4-arg worker is
  // spawned): [4] telemetry shipping on/off, [5] trace directory or "-".
  const bool ship_telemetry =
      argc < 5 || std::strcmp(argv[4], "0") != 0;
  const std::string trace_dir =
      argc >= 6 && std::strcmp(argv[5], "-") != 0 ? argv[5] : "";
  // Immediate mode: a SIGTERM'd worker stamps "interrupted", drains the
  // logger ring and dies with the conventional signal wait status (which is
  // exactly what the supervisor's reclaim logic keys on).
  obs::install_interrupt_handlers(/*exit_immediately=*/true);
  const ChaosConfig chaos = read_chaos_env();

  if (!trace_dir.empty()) {
    // One lane per worker process; the supervisor merges the lanes into
    // obs/campaign.trace.json at campaign end (obs/trace_merge.hpp).
    obs::Tracer::global().enable(trace_dir + "/worker-" +
                                 std::to_string(::getpid()) + ".trace.json");
  }

  const auto send = [&](const std::string& line) {
    return util::write_all(status_fd, line + "\n");
  };

  // Telemetry shipping state (DESIGN.md §16): the worker's registry is
  // sampled against the previous sample and only the delta rides the
  // status pipe, so a long campaign's OBS records stay O(changed metrics).
  obs::MetricsSnapshot shipped;
  const auto ship_obs = [&] {
    if (!ship_telemetry) return;
    obs::MetricsSnapshot cur = obs::MetricsRegistry::global().snapshot();
    const std::string delta = obs::encode_metrics_delta(shipped, cur);
    if (!delta.empty()) send("OBS\t" + delta);
    shipped = std::move(cur);
  };
  auto last_ship = std::chrono::steady_clock::now();
  const auto ship_obs_throttled = [&] {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_ship < std::chrono::milliseconds(500)) return;
    last_ship = now;
    ship_obs();
    // Same cadence for the trace lane: a SIGKILLed worker then leaves a
    // truncated-but-valid file at most one throttle window stale.
    if (!trace_dir.empty()) obs::Tracer::global().flush();
  };

  if (!send("READY")) return 1;

  std::string buf;
  std::string line;
  while (read_line(cmd_fd, buf, line)) {
    if (line == "QUIT") break;
    const std::vector<std::string> f = split_tabs(line);
    // CELL <index> <attempt> <config-record> <resume-record|-> <snapshot|->
    if (f.size() != 6 || f[0] != "CELL") {
      obs::log_warn("campaign.worker", "malformed command").field("line", line);
      continue;
    }
    Cell cell;
    cell.index = static_cast<std::size_t>(std::strtoull(f[1].c_str(), nullptr, 10));
    const int attempt = std::atoi(f[2].c_str());
    if (!decode_config(f[3], cell.config)) {
      send("FAIL\t" + f[1] + "\terror\tundecodable cell config");
      continue;
    }
    cell.id = cell_id(cell.config);
    const std::string index_text = std::to_string(cell.index);

    if (chaos.diverge.count(cell.index) != 0) {
      send("FAIL\t" + index_text + "\tdiverged\tchaos: injected divergence");
      continue;
    }
    if (chaos.hang_enabled && chaos.hang_index == cell.index &&
        chaos.hang_attempt == attempt) {
      // Never heartbeat for this lease: the supervisor's watchdog must
      // notice the staleness and SIGKILL us.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }

    // Deterministic mid-train SIGKILL, keyed on (cell, attempt) so the
    // schedule is reproducible and retries past `max` always converge.
    bool kill_this_lease = false;
    int kill_epoch = 0;
    if (chaos.kill_enabled && attempt <= chaos.kill_max_attempt) {
      const std::uint64_t h = util::derive_stream_seed(
          chaos.kill_seed,
          static_cast<std::uint64_t>(cell.index) * 31 +
              static_cast<std::uint64_t>(attempt));
      if (h % 100 < static_cast<std::uint64_t>(chaos.kill_pct)) {
        kill_this_lease = true;
        const int epochs = std::max(1, cell.config.epochs);
        kill_epoch = 1 + static_cast<int>((h >> 8) % static_cast<std::uint64_t>(epochs));
      }
    }

    CellHooks hooks;
    hooks.resume_train_tsv = f[4] == "-" ? "" : f[4];
    hooks.snapshot_path = f[5] == "-" ? "" : f[5];
    hooks.heartbeat = [&](const char* phase, int epoch) {
      send("HB\t" + index_text + "\t" + phase + "\t" + std::to_string(epoch));
      ship_obs_throttled();
      if (kill_this_lease && std::strcmp(phase, "fit") == 0 &&
          epoch == kill_epoch) {
        obs::Logger::global().flush();
        // Leave the last-flushed (valid) trace lane behind; the merged
        // campaign trace then shows this worker's truncated timeline.
        if (!trace_dir.empty()) obs::Tracer::global().flush();
        ::kill(::getpid(), SIGKILL);  // the chaos crash: no cleanup, no exit
      }
    };
    hooks.on_trained = [&](const CellTrainResult& result) {
      send("TRAINED\t" + index_text + "\t" + encode_train_result(result));
    };

    const CellOutcome outcome = run_cell(cell, hooks);
    obs::Logger::global().flush();
    // Unthrottled: the cell's full delta must precede its DONE/FAIL so a
    // completed campaign's merged totals never miss a tail (the bitwise
    // invariance contract of DESIGN.md §16).
    ship_obs();
    if (outcome.ok) {
      if (!send("DONE\t" + index_text + "\t" + outcome.payload + "\t" +
                outcome.telemetry)) {
        break;
      }
    } else {
      if (!send("FAIL\t" + index_text + "\t" + outcome.fail_kind + "\t" +
                outcome.fail_message)) {
        break;
      }
    }
  }
  ship_obs();
  obs::Logger::global().flush();
  if (!trace_dir.empty()) obs::Tracer::global().flush();
  return 0;
}

}  // namespace mldist::campaign
