// Campaign supervisor (ISSUE 7 tentpole): crash-safe sharded execution of
// an experiment grid over N worker processes.
//
// Protocol (one cmd pipe supervisor->worker, one status pipe back, per
// worker):
//
//   lease      supervisor sends CELL<idx,attempt,config,resume?,snapshot>
//              and journals {"event":"lease"} — exactly one worker holds a
//              cell at a time.
//   heartbeat  the worker reports HB<idx,phase,epoch> at phase starts and
//              every training epoch; the supervisor tracks staleness.
//   watchdog   a worker whose heartbeat is older than cell_timeout_s is
//              SIGKILLed; waitpid-based reaping then observes the death the
//              same way it observes a SIGSEGV or an external SIGKILL.
//   reclaim    a dead/hung worker's leased cell goes back to the queue with
//              exponential backoff (backoff_base_s * 2^(attempt-1), capped)
//              until max_cell_retries attempts are spent, after which the
//              cell is journaled permanently failed — the campaign always
//              completes, with partial results if it must (graceful
//              degradation).  FAIL reports (diverged / error) follow the
//              same budget without costing a worker restart.
//
// Determinism and recovery: results are a function of the cell config only
// (seeded per cell index — see spec.hpp), every completed cell's payload is
// journaled to the campaign.state.jsonl WAL *before* its history.jsonl
// line is appended, and a relaunched supervisor replays the WAL to skip
// finished cells, re-emit any missing history lines, and resume cells whose
// offline phase was journaled (TRAINED + model snapshot) at the online
// phase.  workers=0 runs every cell in-process through the identical
// run_cell path — the serial reference the chaos tests compare against.
//
// Only one supervisor may own a state dir (flock on <state_dir>/LOCK).
#pragma once

#include <cstdint>
#include <string>

#include "campaign/spec.hpp"
#include "util/json.hpp"

namespace mldist::campaign {

struct SupervisorOptions {
  /// Worker processes to shard over; 0 = run cells in-process, serially
  /// (the determinism reference, and the fallback where fork is unwanted).
  std::size_t workers = 2;
  /// Heartbeat staleness (seconds) after which a worker counts as hung and
  /// is SIGKILLed.  Must exceed the longest heartbeat gap a healthy cell
  /// can have (one data-collection phase or one training epoch).
  double cell_timeout_s = 120.0;
  /// Lease attempts per cell (first run + retries) before permanent
  /// failure.
  int max_cell_retries = 3;
  double backoff_base_s = 0.25;  ///< reschedule delay after the 1st failure
  double backoff_cap_s = 8.0;
  /// Campaign state directory (WAL, snapshots, lock).  Required.
  std::string state_dir;
  /// Per-cell result lines; default "<state_dir>/history.jsonl".
  std::string history_path;
  /// Binary to exec as workers; default util::self_exe_path().  The binary
  /// must call worker_entry() first thing in main().
  std::string worker_exe;
  double poll_interval_s = 0.05;  ///< supervisor event-loop tick
  /// Test knob simulating a supervisor crash: stop (gracefully, journaling
  /// "interrupted") once this many cells have finished.  0 = off.
  std::size_t stop_after_cells = 0;
  /// Ship each worker's metrics-registry deltas over the status pipe and
  /// fold them into this process's registry under "campaign.worker.*"
  /// (DESIGN.md §16), so /metrics and /runz show live cross-worker totals.
  /// Serial mode folds per-cell deltas through the identical codec, which
  /// is what makes the merged totals bitwise identical for any worker
  /// count on a completed campaign.
  bool ship_telemetry = true;
  /// Trace each worker into <state_dir>/obs/worker-<pid>.trace.json and
  /// merge the lanes into <state_dir>/obs/campaign.trace.json at campaign
  /// end.  Also implied by the supervisor process itself being traced
  /// (--trace / MLDIST_TRACE).
  bool trace_workers = false;
};

struct CampaignReport {
  std::size_t cells_total = 0;
  std::size_t cells_done = 0;     ///< completed this run
  std::size_t cells_failed = 0;   ///< permanently failed this run
  std::size_t cells_skipped = 0;  ///< already journaled by a previous run
  std::size_t retries = 0;        ///< re-leases after any failure kind
  std::size_t reclaims = 0;       ///< leases reclaimed from dead/hung workers
  std::size_t worker_restarts = 0;
  bool interrupted = false;       ///< stopped early (signal/stop_after_cells)
  double reclaim_latency_ns_mean = 0.0;  ///< death detection -> requeued
  double seconds = 0.0;

  /// Every cell accounted for (done now, done before, or failed)?
  bool complete() const {
    return cells_done + cells_skipped + cells_failed == cells_total;
  }
  std::string to_json() const;
};

class Supervisor {
 public:
  Supervisor(CampaignSpec spec, SupervisorOptions options);

  /// Run (or resume) the campaign to completion.  Throws
  /// std::invalid_argument for unusable options (no state_dir, lock held
  /// elsewhere); worker failures never throw — they are the protocol's job.
  CampaignReport run();

 private:
  CampaignSpec spec_;
  SupervisorOptions options_;
};

}  // namespace mldist::campaign
