// Campaign worker (ISSUE 7): the process that actually runs cells.
//
// Workers are fork+exec'd copies of the *hosting binary* — any program
// embedding the Supervisor calls worker_entry(argc, argv) first thing in
// main(); it returns -1 for a normal invocation and otherwise takes over
// the process as a worker (reading CELL commands from the command pipe,
// reporting READY/HB/TRAINED/DONE/FAIL on the status pipe) and returns the
// exit code.  fork+exec rather than bare fork: the parent has thread-pool,
// logger and metrics-server threads whose mutexes a forked child would
// inherit in a locked, unowned state.
//
// run_cell is the single execution path for a cell, shared verbatim by
// workers and the Supervisor's in-process serial mode (workers=0) — which
// is what makes "sharded output is bitwise identical to a serial run" a
// structural property rather than a test hope.
//
// Crash-chaos injection (the process-level extension of core::FaultyOracle's
// deterministic-fault philosophy) lives HERE, in the worker loop, not in
// run_cell: serial reference runs are never perturbed.  Controlled by
// environment variables so the injection crosses the exec boundary:
//   MLDIST_CHAOS_KILL="p=P,seed=S,max=M"  raise(SIGKILL) mid-train with
//       probability P% per (cell,attempt) drawn from derive_stream_seed(S,
//       index*31+attempt), only while attempt <= M (so retries converge).
//   MLDIST_CHAOS_HANG="index:attempt"     sleep forever instead of training
//       that lease (exercises the heartbeat watchdog).
//   MLDIST_CHAOS_DIVERGE="i1,i2,..."      report FAIL diverged for those
//       cell indices on every attempt (exercises permanent failure).
#pragma once

#include <functional>
#include <string>

#include "campaign/spec.hpp"

namespace mldist::campaign {

/// Callbacks/inputs run_cell threads through a cell's execution.
struct CellHooks {
  /// Liveness + progress: called at phase starts and per training epoch.
  /// `phase` is a string literal.
  std::function<void(const char* phase, int epoch)> heartbeat;
  /// Offline phase committed: the model snapshot (if snapshot_path is set)
  /// is on disk and `result` is ready to journal.  Called once, before the
  /// online phase starts.
  std::function<void(const CellTrainResult& result)> on_trained;
  /// Non-empty: skip training, restore the model from snapshot_path and
  /// adopt this encode_train_result record (falls back to a full train when
  /// the snapshot is missing/corrupt).
  std::string resume_train_tsv;
  /// Non-empty: where to snapshot the trained model (nn::save_params) so a
  /// later attempt can resume past the offline phase.
  std::string snapshot_path;
};

struct CellOutcome {
  bool ok = false;
  std::string fail_kind;     ///< "diverged" | "error" when !ok
  std::string fail_message;  ///< single line (tabs/newlines stripped)
  std::string payload;       ///< cell_payload_json when ok
  std::string telemetry;     ///< cell_telemetry_json when ok
};

/// Run one cell start to finish: offline collect+train (or snapshot
/// resume), then — when the distinguisher is usable — the online phase
/// against the cipher oracle.  Deterministic: the payload depends only on
/// cell.config.  Training that exhausts its retries and degrades to the
/// linear baseline is reported as fail_kind "diverged" (the campaign's
/// retry budget, not the payload, absorbs it).  Never throws.
CellOutcome run_cell(const Cell& cell, const CellHooks& hooks);

/// Worker-mode hook for main(): returns -1 when argv is not a worker
/// invocation ("<exe> --mldist-campaign-worker <cmd_fd> <status_fd>"),
/// otherwise runs the worker loop and returns the process exit code.
int worker_entry(int argc, char** argv);

/// argv[1] of a worker invocation (exposed for the Supervisor's spawner).
extern const char kWorkerFlag[];

}  // namespace mldist::campaign
