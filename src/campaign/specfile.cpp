#include "campaign/specfile.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/targets.hpp"

namespace mldist::campaign {

SpecError::SpecError(const std::string& origin, int line,
                     const std::string& message)
    : std::invalid_argument(origin + ":" + std::to_string(line) + ": " +
                            message),
      line_(line) {}

namespace {

// ---------------------------------------------------------------------------
// A minimal JSON DOM with per-node source lines.  Numbers keep their raw
// text so 64-bit integers survive exactly (no double round-trip).
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  int line = 1;
  bool boolean = false;
  std::string text;  // string contents or raw number text
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  const char* kind_name() const {
    switch (kind) {
      case Kind::kNull: return "null";
      case Kind::kBool: return "a boolean";
      case Kind::kNumber: return "a number";
      case Kind::kString: return "a string";
      case Kind::kArray: return "an array";
      case Kind::kObject: return "an object";
    }
    return "a value";
  }
};

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ < text_.size()) fail("trailing content after the spec object");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw SpecError(origin_, line_, message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of spec");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    Value v;
    v.line = line_;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = Value::Kind::kString;
        v.text = parse_string();
        return v;
      case 't':
      case 'f':
        v.kind = Value::Kind::kBool;
        v.boolean = c == 't';
        expect_word(c == 't' ? "true" : "false");
        return v;
      case 'n':
        v.kind = Value::Kind::kNull;
        expect_word("null");
        return v;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          v.kind = Value::Kind::kNumber;
          v.text = parse_number();
          return v;
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected '") + word + "'");
      }
      ++pos_;
    }
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == d) fail("malformed number");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    return text_.substr(start, pos_ - start);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\n') fail("unterminated string");
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated string escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            fail(std::string("unsupported string escape '\\") + e + "'");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    v.line = line_;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    v.line = line_;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a quoted object key");
      const int key_line = line_;
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Value member = parse_value();
      member.line = member.kind == Value::Kind::kObject ||
                            member.kind == Value::Kind::kArray
                        ? member.line
                        : key_line;
      v.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

class Mapper {
 public:
  explicit Mapper(const std::string& origin) : origin_(origin) {}

  CampaignSpec map(const Value& root) {
    require(root, Value::Kind::kObject, "spec");
    CampaignSpec spec;
    for (const auto& [key, v] : root.members) {
      if (key == "name") {
        spec.name = as_string(v, key);
      } else if (key == "seed") {
        spec.seed = as_u64(v, key);
      } else if (key == "defaults") {
        map_defaults(v, spec.base);
      } else if (key == "grid") {
        require(v, Value::Kind::kArray, key);
        for (const Value& b : v.items) {
          spec.blocks.push_back(map_block(b));
        }
      } else {
        unknown_key(v, key, "the spec",
                    "name, seed, defaults, grid");
      }
    }
    if (spec.blocks.empty()) {
      throw SpecError(origin_, root.line,
                      "spec needs a non-empty \"grid\" array");
    }
    validate(spec);
    return spec;
  }

 private:
  [[noreturn]] void unknown_key(const Value& v, const std::string& key,
                                const std::string& where,
                                const char* known) const {
    throw SpecError(origin_, v.line,
                    "unknown key \"" + key + "\" in " + where +
                        " (known keys: " + known + ")");
  }

  void require(const Value& v, Value::Kind kind, const std::string& key) const {
    if (v.kind == kind) return;
    const char* want = "a value";
    switch (kind) {
      case Value::Kind::kString: want = "a string"; break;
      case Value::Kind::kNumber: want = "a number"; break;
      case Value::Kind::kArray: want = "an array"; break;
      case Value::Kind::kObject: want = "an object"; break;
      default: break;
    }
    throw SpecError(origin_, v.line,
                    "\"" + key + "\" must be " + want + ", got " +
                        v.kind_name());
  }

  std::string as_string(const Value& v, const std::string& key) const {
    require(v, Value::Kind::kString, key);
    return v.text;
  }

  std::uint64_t as_u64(const Value& v, const std::string& key) const {
    // Accept JSON integers and (for masks) hex strings like "0x40".
    const std::string* raw = nullptr;
    if (v.kind == Value::Kind::kNumber) {
      if (v.text.find_first_of(".eE-") != std::string::npos) {
        throw SpecError(origin_, v.line,
                        "\"" + key + "\" must be a non-negative integer, got " +
                            v.text);
      }
      raw = &v.text;
    } else if (v.kind == Value::Kind::kString) {
      raw = &v.text;
    } else {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" must be an integer or a hex string, "
                      "got " + std::string(v.kind_name()));
    }
    char* end = nullptr;
    const std::uint64_t out = std::strtoull(raw->c_str(), &end, 0);
    if (raw->empty() || end == nullptr || *end != '\0') {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" is not a valid integer: \"" + *raw +
                          "\"");
    }
    return out;
  }

  int as_int(const Value& v, const std::string& key) const {
    require(v, Value::Kind::kNumber, key);
    if (v.text.find_first_of(".eE") != std::string::npos) {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" must be an integer, got " + v.text);
    }
    // Checked parse (parse-time-validation contract): empty text, trailing
    // garbage and out-of-int-range values are all rejected here with the
    // spec file:line, never silently truncated by an unchecked strtol.
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(v.text.c_str(), &end, 10);
    if (v.text.empty() || end != v.text.c_str() + v.text.size()) {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" is not a valid integer: \"" + v.text +
                          "\"");
    }
    if (errno == ERANGE || parsed > 2147483647L || parsed < -2147483648L) {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" is out of integer range: " + v.text);
    }
    return static_cast<int>(parsed);
  }

  double as_double(const Value& v, const std::string& key) const {
    require(v, Value::Kind::kNumber, key);
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(v.text.c_str(), &end);
    if (v.text.empty() || end != v.text.c_str() + v.text.size()) {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" is not a valid number: \"" + v.text +
                          "\"");
    }
    if (errno == ERANGE || !std::isfinite(parsed)) {
      throw SpecError(origin_, v.line,
                      "\"" + key + "\" is out of range: " + v.text);
    }
    return parsed;
  }

  std::vector<std::uint64_t> as_diff_set(const Value& v,
                                         const std::string& key) const {
    require(v, Value::Kind::kArray, key);
    std::vector<std::uint64_t> out;
    out.reserve(v.items.size());
    for (const Value& item : v.items) out.push_back(as_u64(item, key));
    return out;
  }

  void map_defaults(const Value& v, core::ExperimentConfig& base) const {
    require(v, Value::Kind::kObject, "defaults");
    for (const auto& [key, m] : v.members) {
      if (key == "target") base.target = as_string(m, key);
      else if (key == "rounds") base.rounds = as_int(m, key);
      else if (key == "arch") base.arch = as_string(m, key);
      else if (key == "diff_site") base.diff_site = as_string(m, key);
      else if (key == "diffs") base.diffs = as_diff_set(m, key);
      else if (key == "epochs") base.epochs = as_int(m, key);
      else if (key == "batch_size") base.batch_size = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "learning_rate") base.learning_rate = static_cast<float>(as_double(m, key));
      else if (key == "validation_fraction") base.validation_fraction = as_double(m, key);
      else if (key == "z_threshold") base.z_threshold = as_double(m, key);
      else if (key == "threads") base.threads = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "offline_base_inputs") base.offline_base_inputs = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "online_base_inputs") base.online_base_inputs = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "games") base.games = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "max_retries") base.max_retries = as_int(m, key);
      else if (key == "lr_backoff") base.lr_backoff = static_cast<float>(as_double(m, key));
      else {
        unknown_key(m, key, "defaults",
                    "target, rounds, arch, diff_site, diffs, epochs, "
                    "batch_size, learning_rate, validation_fraction, "
                    "z_threshold, threads, offline_base_inputs, "
                    "online_base_inputs, games, max_retries, lr_backoff");
      }
    }
  }

  CellOverrides map_overrides(const Value& v) const {
    require(v, Value::Kind::kObject, "overrides");
    CellOverrides o;
    for (const auto& [key, m] : v.members) {
      if (key == "epochs") o.epochs = as_int(m, key);
      else if (key == "batch_size") o.batch_size = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "learning_rate") o.learning_rate = static_cast<float>(as_double(m, key));
      else if (key == "validation_fraction") o.validation_fraction = as_double(m, key);
      else if (key == "z_threshold") o.z_threshold = as_double(m, key);
      else if (key == "online_base_inputs") o.online_base_inputs = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "games") o.games = static_cast<std::size_t>(as_u64(m, key));
      else if (key == "max_retries") o.max_retries = as_int(m, key);
      else {
        unknown_key(m, key, "overrides",
                    "epochs, batch_size, learning_rate, "
                    "validation_fraction, z_threshold, online_base_inputs, "
                    "games, max_retries");
      }
    }
    return o;
  }

  GridBlock map_block(const Value& v) const {
    require(v, Value::Kind::kObject, "grid block");
    GridBlock block;
    for (const auto& [key, m] : v.members) {
      if (key == "targets") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          block.targets.push_back(as_string(item, key));
        }
      } else if (key == "rounds") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          block.rounds.push_back(as_int(item, key));
        }
      } else if (key == "archs") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          block.archs.push_back(as_string(item, key));
        }
      } else if (key == "diff_sites") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          const std::string site = as_string(item, key);
          try {
            core::parse_diff_site(site);
          } catch (const std::invalid_argument& e) {
            throw SpecError(origin_, item.line, e.what());
          }
          block.diff_sites.push_back(site);
        }
      } else if (key == "diff_sets") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          block.diff_sets.push_back(as_diff_set(item, key));
        }
      } else if (key == "offline_base_inputs") {
        require(m, Value::Kind::kArray, key);
        for (const Value& item : m.items) {
          block.offline_budgets.push_back(
              static_cast<std::size_t>(as_u64(item, key)));
        }
      } else if (key == "overrides") {
        block.overrides = map_overrides(m);
      } else {
        unknown_key(m, key, "a grid block",
                    "targets, rounds, archs, diff_sites, diff_sets, "
                    "offline_base_inputs, overrides");
      }
    }
    return block;
  }

  void validate(const CampaignSpec& spec) const {
    // Instantiating every cell's target catches unknown target names, bad
    // diff sites and out-of-range rounds/diffs before any worker forks.
    for (const Cell& cell : expand_grid(spec)) {
      try {
        (void)cell.config.make_target();
      } catch (const std::invalid_argument& e) {
        throw SpecError(origin_, 1,
                        "cell " + std::to_string(cell.index) + " (" +
                            cell.config.target + "/" +
                            std::to_string(cell.config.rounds) + "r, " +
                            cell.config.diff_site + "): " + e.what());
      }
    }
  }

  const std::string& origin_;
};

}  // namespace

CampaignSpec parse_spec_text(const std::string& text,
                             const std::string& origin) {
  Parser parser(text, origin);
  const Value root = parser.parse();
  Mapper mapper(origin);
  return mapper.map(root);
}

CampaignSpec load_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("campaign: cannot read spec file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_spec_text(buf.str(), path);
}

}  // namespace mldist::campaign
