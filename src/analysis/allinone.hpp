// Sampled all-in-one difference distributions (Albrecht–Leander; §2.3).
//
// Gohr computed the full difference distribution of round-reduced
// SPECK-32/64 under one input difference; with our CPU budget we estimate it
// by sampling and derive two classical distinguisher statistics from the
// estimate:
//   * the best single output difference (the classical 1-trail distinguisher
//     the paper's Table 1 comparison is about), and
//   * an all-in-one score — the log-likelihood-ratio classifier between the
//     empirical cipher distribution and uniform, evaluated on held-out data.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace mldist::analysis {

/// Histogram over 32-bit output differences.
class DiffHistogram {
 public:
  void add(std::uint32_t diff) { ++counts_[diff]; ++total_; }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::uint32_t diff) const;
  std::size_t support_size() const { return counts_.size(); }

  /// Most frequent output difference and its empirical probability.
  struct Mode {
    std::uint32_t diff = 0;
    std::uint64_t count = 0;
    double probability = 0.0;
  };
  Mode mode() const;

  /// -log2 of the mode probability: the empirical weight of the best trail.
  double best_weight() const;

  const std::unordered_map<std::uint32_t, std::uint64_t>& raw() const {
    return counts_;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Sample `n` pairs through `pair_diff` (a functor returning the output
/// difference for a fresh random input pair) and histogram the results.
DiffHistogram sample_diff_distribution(
    const std::function<std::uint32_t(util::Xoshiro256&)>& pair_diff,
    std::uint64_t n, util::Xoshiro256& rng);

/// All-in-one distinguisher: score held-out samples by whether the output
/// difference was frequent in the training histogram.  Returns the accuracy
/// of classifying cipher-vs-random, the classical analogue of the paper's
/// neural accuracy.
struct AllInOneResult {
  double accuracy = 0.0;     ///< cipher-vs-random decision accuracy
  double cipher_hit = 0.0;   ///< P(score > threshold | cipher)
  double random_hit = 0.0;   ///< P(score > threshold | random)
};

AllInOneResult allinone_distinguisher(
    const DiffHistogram& train,
    const std::function<std::uint32_t(util::Xoshiro256&)>& cipher_pair_diff,
    std::uint32_t bits, std::uint64_t test_n, util::Xoshiro256& rng);

}  // namespace mldist::analysis
