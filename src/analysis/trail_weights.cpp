#include "analysis/trail_weights.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>

namespace mldist::analysis {

namespace {

/// Mix a 384-bit state difference down to a 64-bit histogram key.  A random
/// collision among <= 2^26 sampled diffs is vanishingly unlikely and would
/// only make a weight estimate slightly optimistic.
std::uint64_t state_key(const ciphers::GimliState& s) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (std::uint32_t w : s) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

ciphers::GimliState random_state(mldist::util::Xoshiro256& rng) {
  ciphers::GimliState s;
  for (auto& w : s) w = rng.next_u32();
  return s;
}

}  // namespace

WeightEstimate estimate_best_weight(const ciphers::GimliState& input_diff,
                                    int rounds, std::uint64_t samples,
                                    util::Xoshiro256& rng) {
  std::unordered_map<std::uint64_t, std::uint64_t> hist;
  hist.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    ciphers::GimliState a = random_state(rng);
    ciphers::GimliState b = a;
    for (int j = 0; j < 12; ++j) b[j] ^= input_diff[j];
    ciphers::gimli_reduced(a, rounds);
    ciphers::gimli_reduced(b, rounds);
    ciphers::GimliState d;
    for (int j = 0; j < 12; ++j) d[j] = a[j] ^ b[j];
    ++hist[state_key(d)];
  }
  WeightEstimate out;
  out.rounds = rounds;
  out.samples = samples;
  for (const auto& [key, count] : hist) {
    (void)key;
    if (count > out.mode_count) out.mode_count = count;
  }
  out.weight = std::max(0.0, -std::log2(static_cast<double>(out.mode_count) /
                                        static_cast<double>(samples)));
  out.deterministic = (out.mode_count == samples);
  return out;
}

std::vector<WeightEstimate> best_single_bit_weights(int max_rounds,
                                                    std::uint64_t samples,
                                                    util::Xoshiro256& rng) {
  std::vector<WeightEstimate> best(static_cast<std::size_t>(max_rounds));
  for (int r = 1; r <= max_rounds; ++r) {
    WeightEstimate round_best;
    round_best.weight = std::numeric_limits<double>::infinity();
    for (int bit = 0; bit < 384; ++bit) {
      ciphers::GimliState diff{};
      diff[bit / 32] = 1u << (bit % 32);
      const WeightEstimate e = estimate_best_weight(diff, r, samples, rng);
      if (e.weight < round_best.weight) round_best = e;
    }
    best[static_cast<std::size_t>(r - 1)] = round_best;
  }
  return best;
}

}  // namespace mldist::analysis
