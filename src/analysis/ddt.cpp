#include "analysis/ddt.hpp"

#include <algorithm>

namespace mldist::analysis {

Ddt4::Ddt4(std::span<const std::uint8_t, 16> sbox) {
  std::copy(sbox.begin(), sbox.end(), sbox_.begin());
  for (int din = 0; din < 16; ++din) {
    for (int x = 0; x < 16; ++x) {
      const int dout = sbox_[x] ^ sbox_[x ^ din];
      ++table_[din][dout];
    }
  }
}

std::vector<std::uint8_t> Ddt4::valid_inputs(std::uint8_t din,
                                             std::uint8_t dout) const {
  std::vector<std::uint8_t> out;
  for (int x = 0; x < 16; ++x) {
    if ((sbox_[x] ^ sbox_[x ^ (din & 0xf)]) == (dout & 0xf)) {
      out.push_back(static_cast<std::uint8_t>(x));
    }
  }
  return out;
}

int Ddt4::uniformity() const {
  int best = 0;
  for (int din = 1; din < 16; ++din) {
    for (int dout = 0; dout < 16; ++dout) {
      best = std::max(best, table_[din][dout]);
    }
  }
  return best;
}

}  // namespace mldist::analysis
