#include "analysis/speck_trails.hpp"

#include <array>

#include "analysis/arx.hpp"
#include "ciphers/speck3264.hpp"
#include "util/rng.hpp"

namespace mldist::analysis {

namespace {

constexpr std::uint16_t rotl16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v << r) | (v >> (16 - r)));
}
constexpr std::uint16_t rotr16(std::uint16_t v, int r) {
  return static_cast<std::uint16_t>((v >> r) | (v << (16 - r)));
}

struct Search {
  int rounds = 0;
  int best = 0;  // current bound (strictly better solutions only)
  SpeckTrail best_trail;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> cur_states;
  std::vector<int> cur_weights;

  void descend_round(std::uint16_t dx, std::uint16_t dy, int round, int acc);

  /// Enumerate valid gamma for (alpha, beta) bit by bit.  `i` is the next
  /// bit to fix; `w` the weight accumulated inside this addition.
  void enum_gamma(std::uint16_t alpha, std::uint16_t beta, std::uint16_t gamma,
                  int i, int w, std::uint16_t dy, int round, int acc);
};

void Search::enum_gamma(std::uint16_t alpha, std::uint16_t beta,
                        std::uint16_t gamma, int i, int w, std::uint16_t dy,
                        int round, int acc) {
  if (acc + w >= best) return;  // bound
  if (i == 16) {
    // Round complete: dx' = gamma, dy' = (dy <<< 2) ^ gamma.
    const std::uint16_t ndx = gamma;
    const std::uint16_t ndy = static_cast<std::uint16_t>(rotl16(dy, 2) ^ gamma);
    cur_weights.push_back(w);
    cur_states.emplace_back(ndx, ndy);
    descend_round(ndx, ndy, round + 1, acc + w);
    cur_states.pop_back();
    cur_weights.pop_back();
    return;
  }
  const auto bit = [](std::uint16_t v, int k) { return (v >> k) & 1; };
  if (i == 0) {
    // eq at the virtual position -1 (all zero after <<1): gamma0 forced.
    const std::uint16_t g0 = static_cast<std::uint16_t>(bit(alpha, 0) ^ bit(beta, 0));
    enum_gamma(alpha, beta, static_cast<std::uint16_t>(gamma | g0), 1, w, dy,
               round, acc);
    return;
  }
  const int a_prev = bit(alpha, i - 1);
  const int b_prev = bit(beta, i - 1);
  const int g_prev = bit(gamma, i - 1);
  if (a_prev == b_prev && b_prev == g_prev) {
    // eq position: next bit is forced, no weight.
    const std::uint16_t gi = static_cast<std::uint16_t>(
        bit(alpha, i) ^ bit(beta, i) ^ b_prev);
    enum_gamma(alpha, beta, static_cast<std::uint16_t>(gamma | (gi << i)),
               i + 1, w, dy, round, acc);
  } else {
    // Non-eq position i-1 costs one weight unit (positions 0..14) and the
    // next bit branches.
    for (int gi = 0; gi <= 1; ++gi) {
      enum_gamma(alpha, beta,
                 static_cast<std::uint16_t>(gamma | (gi << i)), i + 1, w + 1,
                 dy, round, acc);
    }
  }
}

void Search::descend_round(std::uint16_t dx, std::uint16_t dy, int round,
                           int acc) {
  if (round == rounds) {
    if (acc < best) {
      best = acc;
      best_trail.found = true;
      best_trail.total_weight = acc;
      best_trail.states = cur_states;
      best_trail.round_weights = cur_weights;
    }
    return;
  }
  const std::uint16_t alpha = rotr16(dx, 7);
  enum_gamma(alpha, dy, 0, 0, 0, dy, round, acc);
}

}  // namespace

SpeckTrail speck_best_characteristic(std::uint16_t dx, std::uint16_t dy,
                                     int rounds, int max_weight) {
  Search s;
  s.rounds = rounds;
  s.best = max_weight + 1;
  s.cur_states.emplace_back(dx, dy);
  s.descend_round(dx, dy, 0, 0);
  return s.best_trail;
}

double speck_characteristic_empirical(const SpeckTrail& trail,
                                      std::uint64_t samples,
                                      std::uint64_t seed) {
  if (!trail.found || trail.states.size() < 2) return 0.0;
  util::Xoshiro256 rng(seed);
  const int rounds = static_cast<int>(trail.states.size()) - 1;
  std::uint64_t hits = 0;
  for (std::uint64_t n = 0; n < samples; ++n) {
    const std::array<std::uint16_t, 4> key = {
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32())};
    const ciphers::Speck3264 cipher(key);
    ciphers::SpeckBlock a{static_cast<std::uint16_t>(rng.next_u32()),
                          static_cast<std::uint16_t>(rng.next_u32())};
    ciphers::SpeckBlock b{
        static_cast<std::uint16_t>(a.x ^ trail.states[0].first),
        static_cast<std::uint16_t>(a.y ^ trail.states[0].second)};
    bool follows = true;
    for (int r = 0; r < rounds && follows; ++r) {
      a = ciphers::Speck3264::round(a, cipher.round_keys()[static_cast<std::size_t>(r)]);
      b = ciphers::Speck3264::round(b, cipher.round_keys()[static_cast<std::size_t>(r)]);
      follows = (static_cast<std::uint16_t>(a.x ^ b.x) ==
                 trail.states[static_cast<std::size_t>(r + 1)].first) &&
                (static_cast<std::uint16_t>(a.y ^ b.y) ==
                 trail.states[static_cast<std::size_t>(r + 1)].second);
    }
    hits += follows;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace mldist::analysis
