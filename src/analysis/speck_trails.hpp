// Branch-and-bound search for optimal differential CHARACTERISTICS of
// round-reduced SPECK-32/64 from a fixed input difference, using the exact
// Lipmaa–Moriai per-round probabilities of arx.hpp.
//
// This is the classical, Markov-assumption modelling the paper contrasts
// the ML distinguisher against (for SPECK the assumption is sound: the
// round keys are XORed every round).  The search enumerates the addition
// output difference gamma bit by bit — gamma is forced wherever the three
// words agreed at the previous bit, and branches (costing one weight unit)
// elsewhere — and prunes on the accumulated weight.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mldist::analysis {

struct SpeckTrail {
  bool found = false;
  int total_weight = 0;
  /// Difference states (dx, dy) before round 1, after round 1, ...;
  /// states.size() == rounds + 1 when found.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> states;
  /// -log2 probability contributed by each round.
  std::vector<int> round_weights;
};

/// Best characteristic of `rounds` rounds starting from (dx, dy), with
/// total weight <= max_weight.  Returns found == false if none exists
/// within the bound.
SpeckTrail speck_best_characteristic(std::uint16_t dx, std::uint16_t dy,
                                     int rounds, int max_weight);

/// Probability that the EXACT characteristic `trail` is followed, measured
/// over `samples` random key/plaintext pairs — the empirical check that the
/// Markov product rule holds for SPECK (keyed rounds), in contrast to the
/// §2.1 toy example.
double speck_characteristic_empirical(const SpeckTrail& trail,
                                      std::uint64_t samples,
                                      std::uint64_t seed);

}  // namespace mldist::analysis
