// Markov-cipher machinery (§2.1, Lai–Massey–Murphy).
//
// Eq. 2 of the paper computes a characteristic's probability as the product
// of per-round transition probabilities — valid only for Markov ciphers with
// independent round keys.  `markov_characteristic_probability` evaluates that
// product; `markov_dependence_test` measures how far a (possibly unkeyed)
// round function is from satisfying Definition 2 by sampling
// P(dY = beta | dX = alpha, X = gamma) across fixed inputs gamma.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/ddt.hpp"

namespace mldist::analysis {

/// One S-box transition inside a characteristic: input difference -> output
/// difference through a given DDT.
struct SboxTransition {
  std::uint8_t din = 0;
  std::uint8_t dout = 0;
};

/// Product of DDT probabilities over all transitions (Eq. 2 applied to an
/// S-box characteristic).  Returns 0 if any transition is impossible.
double markov_characteristic_probability(const Ddt4& ddt,
                                         const std::vector<SboxTransition>& t);

/// log2 of the above; +infinity weight (represented as a large value) maps
/// to an impossible characteristic.
double markov_characteristic_weight(const Ddt4& ddt,
                                    const std::vector<SboxTransition>& t);

/// Result of probing Definition 2 on a width-limited round function.
struct MarkovProbe {
  double min_prob = 0.0;   ///< min over gamma of P(dY = beta | X = gamma)
  double max_prob = 0.0;   ///< max over gamma
  double mean_prob = 0.0;  ///< average over gamma (the "Markov" value)
};

/// Exhaustively evaluate P(F(x) ^ F(x ^ alpha) == beta) restricted to each
/// input x = gamma of an n-bit function F (n <= 16), reporting the spread.
/// A Markov round function keyed with uniform subkeys would show
/// min == max; the unkeyed toy cipher shows a large spread.
MarkovProbe markov_dependence_probe(const std::function<std::uint32_t(std::uint32_t)>& f,
                                    int bits, std::uint32_t alpha,
                                    std::uint32_t beta);

}  // namespace mldist::analysis
