#include "analysis/arx.hpp"

#include <cmath>

namespace mldist::analysis {

double xdp_add_probability(std::uint16_t alpha, std::uint16_t beta,
                           std::uint16_t gamma) {
  if (!xdp_add_valid(alpha, beta, gamma)) return 0.0;
  return std::pow(2.0, -xdp_add_weight(alpha, beta, gamma));
}

double xdp_add_exhaustive(unsigned n, std::uint32_t alpha, std::uint32_t beta,
                          std::uint32_t gamma) {
  const std::uint32_t mask = (1u << n) - 1;
  std::uint64_t hits = 0;
  for (std::uint32_t x = 0; x <= mask; ++x) {
    for (std::uint32_t y = 0; y <= mask; ++y) {
      const std::uint32_t s1 = (x + y) & mask;
      const std::uint32_t s2 = ((x ^ alpha) + (y ^ beta)) & mask;
      hits += ((s1 ^ s2) == (gamma & mask));
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(1ULL << (2 * n));
}

}  // namespace mldist::analysis
