#include "analysis/toy_gift.hpp"

#include <algorithm>

#include "analysis/ddt.hpp"
#include "analysis/markov.hpp"
#include "ciphers/gift64.hpp"
#include "ciphers/gift_toy.hpp"

namespace mldist::analysis {

using ciphers::toy_pack;

ToyCharacteristic paper_toy_characteristic() {
  ToyCharacteristic ch;
  ch.dy1 = toy_pack(2, 3);
  ch.dw1 = toy_pack(5, 8);
  ch.dy2 = toy_pack(6, 2);
  ch.dw2 = toy_pack(2, 5);
  return ch;
}

ToyVerification verify_toy_example(const ToyCharacteristic& ch) {
  ToyVerification out;
  for (int x = 0; x < 256; ++x) {
    const auto a = ciphers::toy_trace(static_cast<std::uint8_t>(x));
    const auto b = ciphers::toy_trace(static_cast<std::uint8_t>(x ^ ch.dy1));
    const bool r1 = (a.w1 ^ b.w1) == ch.dw1;
    const bool mid = (a.y2 ^ b.y2) == ch.dy2;
    const bool r2 = (a.w2 ^ b.w2) == ch.dw2;
    if (r1) ++out.follow_round1;
    if (r1 && mid && r2) {
      ++out.follow_full;
      out.surviving_inputs.push_back(static_cast<std::uint8_t>(x));
    }
  }
  out.true_probability = out.follow_full / 256.0;

  const Ddt4 ddt(std::span<const std::uint8_t, 16>(ciphers::kGiftSbox));
  const std::vector<SboxTransition> transitions = {
      {static_cast<std::uint8_t>(ch.dy1 & 0xf), static_cast<std::uint8_t>(ch.dw1 & 0xf)},
      {static_cast<std::uint8_t>(ch.dy1 >> 4), static_cast<std::uint8_t>(ch.dw1 >> 4)},
      {static_cast<std::uint8_t>(ch.dy2 & 0xf), static_cast<std::uint8_t>(ch.dw2 & 0xf)},
      {static_cast<std::uint8_t>(ch.dy2 >> 4), static_cast<std::uint8_t>(ch.dw2 >> 4)},
  };
  out.markov_probability = markov_characteristic_probability(ddt, transitions);
  return out;
}

std::array<double, 256> toy_diff_distribution(std::uint8_t din) {
  std::array<double, 256> dist{};
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t d =
        ciphers::toy_cipher(static_cast<std::uint8_t>(x)) ^
        ciphers::toy_cipher(static_cast<std::uint8_t>(x ^ din));
    dist[d] += 1.0 / 256.0;
  }
  return dist;
}

double toy_allinone_bayes_accuracy(std::uint8_t din0, std::uint8_t din1) {
  const auto p0 = toy_diff_distribution(din0);
  const auto p1 = toy_diff_distribution(din1);
  double acc = 0.0;
  for (int d = 0; d < 256; ++d) {
    acc += 0.5 * std::max(p0[d], p1[d]);
  }
  return acc;
}

}  // namespace mldist::analysis
