// Difference distribution tables for 4-bit S-boxes (§2.1 of the paper works
// from the DDT of the GIFT S-box).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mldist::analysis {

/// DDT of a 4-bit S-box: entry(din, dout) counts inputs x with
/// S(x) ^ S(x ^ din) == dout.
class Ddt4 {
 public:
  explicit Ddt4(std::span<const std::uint8_t, 16> sbox);

  int count(std::uint8_t din, std::uint8_t dout) const {
    return table_[din & 0xf][dout & 0xf];
  }

  /// Transition probability count/16.
  double probability(std::uint8_t din, std::uint8_t dout) const {
    return count(din, dout) / 16.0;
  }

  /// All inputs x satisfying S(x) ^ S(x ^ din) == dout.
  std::vector<std::uint8_t> valid_inputs(std::uint8_t din, std::uint8_t dout) const;

  /// Maximum DDT entry over nonzero input differences (differential
  /// uniformity).
  int uniformity() const;

 private:
  std::array<std::uint8_t, 16> sbox_;
  std::array<std::array<int, 16>, 16> table_{};
};

}  // namespace mldist::analysis
