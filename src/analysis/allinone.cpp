#include "analysis/allinone.hpp"

#include <cmath>
#include <limits>

namespace mldist::analysis {

std::uint64_t DiffHistogram::count(std::uint32_t diff) const {
  const auto it = counts_.find(diff);
  return it == counts_.end() ? 0 : it->second;
}

DiffHistogram::Mode DiffHistogram::mode() const {
  Mode m;
  for (const auto& [diff, count] : counts_) {
    if (count > m.count) {
      m.diff = diff;
      m.count = count;
    }
  }
  if (total_ > 0) {
    m.probability = static_cast<double>(m.count) / static_cast<double>(total_);
  }
  return m;
}

double DiffHistogram::best_weight() const {
  const Mode m = mode();
  if (m.probability <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log2(m.probability);
}

DiffHistogram sample_diff_distribution(
    const std::function<std::uint32_t(util::Xoshiro256&)>& pair_diff,
    std::uint64_t n, util::Xoshiro256& rng) {
  DiffHistogram h;
  for (std::uint64_t i = 0; i < n; ++i) h.add(pair_diff(rng));
  return h;
}

AllInOneResult allinone_distinguisher(
    const DiffHistogram& train,
    const std::function<std::uint32_t(util::Xoshiro256&)>& cipher_pair_diff,
    std::uint32_t bits, std::uint64_t test_n, util::Xoshiro256& rng) {
  // Laplace-smoothed log-likelihood ratio against the uniform distribution
  // over `bits`-bit differences; a sample is called "cipher" when the ratio
  // is positive.
  const double domain = std::pow(2.0, static_cast<double>(bits));
  const double denom = static_cast<double>(train.total()) + domain;
  const double uniform = 1.0 / domain;
  const auto score = [&](std::uint32_t d) {
    const double p = (static_cast<double>(train.count(d)) + 1.0) / denom;
    return std::log(p / uniform);
  };

  AllInOneResult out;
  std::uint64_t cipher_hits = 0;
  std::uint64_t random_hits = 0;
  const std::uint64_t mask =
      bits >= 32 ? 0xffffffffULL : ((1ULL << bits) - 1);
  for (std::uint64_t i = 0; i < test_n; ++i) {
    if (score(cipher_pair_diff(rng)) > 0.0) ++cipher_hits;
    if (score(static_cast<std::uint32_t>(rng.next_u64() & mask)) > 0.0) {
      ++random_hits;
    }
  }
  out.cipher_hit = static_cast<double>(cipher_hits) / static_cast<double>(test_n);
  out.random_hit = static_cast<double>(random_hits) / static_cast<double>(test_n);
  out.accuracy = 0.5 * (out.cipher_hit + (1.0 - out.random_hit));
  return out;
}

}  // namespace mldist::analysis
