// ARX differential machinery: the Lipmaa–Moriai theory of additive
// differential probabilities, specialised to the 16-bit words of
// SPECK-32/64.
//
// xdp+(alpha, beta -> gamma) is the probability over uniform (x, y) that
//   (x + y) ^ ((x ^ alpha) + (y ^ beta)) == gamma.
// Lipmaa–Moriai (FSE 2001): the differential is valid iff
//   eq(alpha<<1, beta<<1, gamma<<1) & (alpha ^ beta ^ gamma ^ (beta<<1)) == 0
// with eq(a,b,c) marking the bit positions where a, b and c agree, and then
//   xdp+ = 2^-hw( ~eq(alpha,beta,gamma) & (2^(n-1) - 1) ).
//
// This gives the classical counterpart of the paper's "branch number or
// MILP" modelling for ARX: exact per-round probabilities that the
// trail-search in speck_trails.hpp multiplies via the Markov assumption.
#pragma once

#include <cstdint>

namespace mldist::analysis {

/// Bit positions where a, b and c agree.
constexpr std::uint16_t eq16(std::uint16_t a, std::uint16_t b, std::uint16_t c) {
  return static_cast<std::uint16_t>(~(a ^ b) & ~(a ^ c));
}

/// True iff xdp+(alpha, beta -> gamma) > 0.
constexpr bool xdp_add_valid(std::uint16_t alpha, std::uint16_t beta,
                             std::uint16_t gamma) {
  const std::uint16_t a1 = static_cast<std::uint16_t>(alpha << 1);
  const std::uint16_t b1 = static_cast<std::uint16_t>(beta << 1);
  const std::uint16_t g1 = static_cast<std::uint16_t>(gamma << 1);
  return (eq16(a1, b1, g1) &
          static_cast<std::uint16_t>(alpha ^ beta ^ gamma ^ b1)) == 0;
}

/// -log2 xdp+(alpha, beta -> gamma); only meaningful when valid.
constexpr int xdp_add_weight(std::uint16_t alpha, std::uint16_t beta,
                             std::uint16_t gamma) {
  return __builtin_popcount(
      static_cast<std::uint16_t>(~eq16(alpha, beta, gamma)) & 0x7fff);
}

/// xdp+ as a probability (0 when invalid).
double xdp_add_probability(std::uint16_t alpha, std::uint16_t beta,
                           std::uint16_t gamma);

/// Exhaustive reference for testing on n-bit words (n <= 10): counts pairs
/// (x, y) realising the differential and divides by 2^(2n).
double xdp_add_exhaustive(unsigned n, std::uint32_t alpha, std::uint32_t beta,
                          std::uint32_t gamma);

}  // namespace mldist::analysis
