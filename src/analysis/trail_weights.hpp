// Table 1 of the paper: optimal differential trail weights for round-reduced
// Gimli, as proved by the designers with a SAT/SMT search.
//
// The SAT search itself is outside this reproduction's scope (Table 1 is an
// input the paper cites from the Gimli design document); what we CAN verify
// on a CPU budget is the low-weight prefix: rounds 1 and 2 admit
// probability-1 trails and round 3 a weight-2 trail.  We do so empirically —
// `estimate_best_weight` samples pairs under a fixed input difference and
// measures the weight of the most likely output difference of the FULL
// 384-bit state, which lower-bounds the optimal trail probability whenever
// the sample budget 2^b exceeds 2^weight.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ciphers/gimli.hpp"
#include "util/rng.hpp"

namespace mldist::analysis {

/// Designers' optimal trail weights for rounds 1..8 (Table 1).
inline constexpr std::array<int, 8> kGimliOptimalTrailWeights = {0, 0, 2, 6,
                                                                 12, 22, 36, 52};

struct WeightEstimate {
  int rounds = 0;
  std::uint64_t samples = 0;
  std::uint64_t mode_count = 0;  ///< hits of the most frequent output diff
  double weight = 0.0;           ///< -log2(mode_count / samples)
  bool deterministic = false;    ///< every sample produced the same diff
};

/// Estimate the best output-difference weight of `rounds`-round Gimli under
/// the given input state difference, over `samples` random pairs.
WeightEstimate estimate_best_weight(const ciphers::GimliState& input_diff,
                                    int rounds, std::uint64_t samples,
                                    util::Xoshiro256& rng);

/// Search over all single-bit input differences for the smallest estimated
/// weight at each round count in [1, max_rounds].  `samples` pairs per
/// difference per round.  Cheap single-bit sweep — a lower bound on what the
/// designers' SAT search explores, sufficient to confirm rounds 1-3.
std::vector<WeightEstimate> best_single_bit_weights(int max_rounds,
                                                    std::uint64_t samples,
                                                    util::Xoshiro256& rng);

}  // namespace mldist::analysis
