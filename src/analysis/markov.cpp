#include "analysis/markov.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mldist::analysis {

double markov_characteristic_probability(
    const Ddt4& ddt, const std::vector<SboxTransition>& t) {
  double p = 1.0;
  for (const auto& tr : t) p *= ddt.probability(tr.din, tr.dout);
  return p;
}

double markov_characteristic_weight(const Ddt4& ddt,
                                    const std::vector<SboxTransition>& t) {
  const double p = markov_characteristic_probability(ddt, t);
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log2(p);
}

MarkovProbe markov_dependence_probe(
    const std::function<std::uint32_t(std::uint32_t)>& f, int bits,
    std::uint32_t alpha, std::uint32_t beta) {
  const std::uint32_t n = 1u << bits;
  MarkovProbe out;
  out.min_prob = 1.0;
  out.max_prob = 0.0;
  double sum = 0.0;
  for (std::uint32_t gamma = 0; gamma < n; ++gamma) {
    const double p =
        (f(gamma) ^ f(gamma ^ alpha)) == beta ? 1.0 : 0.0;
    out.min_prob = std::min(out.min_prob, p);
    out.max_prob = std::max(out.max_prob, p);
    sum += p;
  }
  out.mean_prob = sum / static_cast<double>(n);
  return out;
}

}  // namespace mldist::analysis
