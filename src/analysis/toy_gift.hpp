// Exhaustive verification of the paper's §2.1 / Fig. 1 toy example.
//
// The claim: for the 2-round unkeyed toy cipher, the characteristic
//   dY1 = (2,3) -> dW1 = (5,8) -> dY2 = (6,2) -> dW2 = (2,5)
// holds with probability 2^-6, while the Markov product rule (Eq. 2)
// predicts 2^-9.  `verify_toy_example` enumerates all 256 inputs and counts
// each stage exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::analysis {

struct ToyCharacteristic {
  std::uint8_t dy1 = 0;  ///< input difference (packed nibbles)
  std::uint8_t dw1 = 0;  ///< after round-1 S-boxes
  std::uint8_t dy2 = 0;  ///< after the bit permutation
  std::uint8_t dw2 = 0;  ///< after round-2 S-boxes (output difference)
};

/// The exact characteristic of the paper's example.
ToyCharacteristic paper_toy_characteristic();

struct ToyVerification {
  int inputs_total = 256;         ///< ordered inputs enumerated
  int follow_round1 = 0;          ///< inputs whose pair follows dY1 -> dW1
  int follow_full = 0;            ///< inputs following the whole characteristic
  double true_probability = 0.0;  ///< follow_full / 256
  double markov_probability = 0.0;  ///< Eq. 2 product over the 4 transitions
  std::vector<std::uint8_t> surviving_inputs;  ///< inputs following everything
};

/// Enumerate all inputs and verify every number of §2.1.
ToyVerification verify_toy_example(const ToyCharacteristic& ch);

/// Exact all-in-one machinery on the toy cipher: the full output-difference
/// distribution under one input difference (256 inputs, enumerated).
/// dist[d] = P(C(x) ^ C(x ^ din) == d) over uniform x.
std::array<double, 256> toy_diff_distribution(std::uint8_t din);

/// Bayes-optimal accuracy of distinguishing which of two input differences
/// produced an observed output difference (uniform prior):
///   0.5 * sum_d max(P0(d), P1(d)).
/// This is the information-theoretic ceiling any classifier — neural or
/// otherwise — can reach, the quantity the paper's ML model "simulates".
double toy_allinone_bayes_accuracy(std::uint8_t din0, std::uint8_t din1);

}  // namespace mldist::analysis
