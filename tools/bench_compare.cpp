// bench_compare — the CI regression gate over results/history.jsonl.
//
// Every bench run appends one {"bench":...,"manifest":...,<payload>} line
// to results/history.jsonl (bench/bench_common.hpp).  This tool turns that
// trajectory into a gate:
//
//   bench_compare check --history results/history.jsonl
//                       --baseline tools/baselines.jsonl
//                       [--tolerance 0.05] [--report FILE]
//       Compare the NEWEST history entry of every bench named in the
//       baseline file against its pinned metrics.  Exit 1 on any
//       regression beyond the relative tolerance, 0 otherwise (benches
//       missing from the history are reported but do not fail the gate —
//       CI may legitimately run a subset).
//
//   bench_compare append --bench-json results/BENCH_x.json --name x
//                        [--history results/history.jsonl]
//       Re-append an existing artifact to the history (normally the bench
//       itself does this; this mode backfills old artifacts).
//
//   bench_compare self-check
//       Prove the gate works: build a synthetic history, assert exit 0 on
//       identical metrics and nonzero after injecting a 10% regression
//       into a copied history file.  Runs under the ctest "regress" label.
//
// Which numbers gate: only metrics whose name declares a direction.
// Lower-is-better: *_ns, *_ns_per_op, *seconds*.  Higher-is-better:
// *accuracy*, *per_sec, *speedup*, *rate*.  Everything else in the payload
// (seeds, iteration counts, thread counts, manifest fields) is provenance,
// not performance, and is ignored.
//
// The extraction below is a deliberately tiny recursive-descent reader that
// collects numeric leaves as dotted paths.  It is a consumer-side tool; the
// library side of the repo still only ever *writes* JSON (util/json.hpp).
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

// ---------------------------------------------------------------------------
// numeric-leaf extraction
// ---------------------------------------------------------------------------

struct Extractor {
  explicit Extractor(std::string_view t) : text(t) {}

  std::string_view text;
  std::size_t pos = 0;
  std::map<std::string, double> leaves;
  std::map<std::string, std::string> strings;  ///< top-level-ish strings
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    skip_ws();
    std::string out;
    if (pos >= text.size() || text[pos] != '"') {
      ok = false;
      return out;
    }
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        const char e = text[pos + 1];
        if (e == 'n') out += '\n';
        else if (e == 't') out += '\t';
        else if (e == 'u') {  // keep the raw escape; paths never need it
          out += "\\u";
          pos += 2;
          continue;
        } else out += e;
        pos += 2;
      } else {
        out += text[pos++];
      }
    }
    if (pos >= text.size()) ok = false;
    ++pos;  // closing quote
    return out;
  }

  void parse_value(const std::string& path) {
    skip_ws();
    if (pos >= text.size()) {
      ok = false;
      return;
    }
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      if (consume('}')) return;
      do {
        const std::string key = parse_string();
        if (!ok || !consume(':')) {
          ok = false;
          return;
        }
        parse_value(path.empty() ? key : path + "." + key);
        if (!ok) return;
      } while (consume(','));
      if (!consume('}')) ok = false;
    } else if (c == '[') {
      ++pos;
      if (consume(']')) return;
      int idx = 0;
      do {
        parse_value(path + "[" + std::to_string(idx++) + "]");
        if (!ok) return;
      } while (consume(','));
      if (!consume(']')) ok = false;
    } else if (c == '"') {
      strings[path] = parse_string();
    } else if (std::strncmp(text.data() + pos, "true", 4) == 0) {
      pos += 4;
    } else if (std::strncmp(text.data() + pos, "false", 5) == 0) {
      pos += 5;
    } else if (std::strncmp(text.data() + pos, "null", 4) == 0) {
      pos += 4;
    } else {
      char* end = nullptr;
      const double v = std::strtod(text.data() + pos, &end);
      if (end == text.data() + pos) {
        ok = false;
        return;
      }
      pos = static_cast<std::size_t>(end - text.data());
      leaves[path] = v;
    }
  }
};

struct BenchEntry {
  std::string bench;
  std::map<std::string, double> metrics;
  std::string run_id;
};

bool extract_entry(const std::string& line, BenchEntry& out) {
  Extractor ex(line);
  ex.parse_value("");
  if (!ex.ok) return false;
  const auto bench_it = ex.strings.find("bench");
  if (bench_it == ex.strings.end()) return false;
  out.bench = bench_it->second;
  out.metrics = std::move(ex.leaves);
  const auto run_it = ex.strings.find("manifest.run_id");
  if (run_it != ex.strings.end()) out.run_id = run_it->second;
  return true;
}

/// Newest entry per bench name across the file's lines.
std::map<std::string, BenchEntry> load_latest(const std::string& path,
                                              bool* io_ok) {
  std::map<std::string, BenchEntry> out;
  std::ifstream in(path);
  if (!in) {
    if (io_ok != nullptr) *io_ok = false;
    return out;
  }
  if (io_ok != nullptr) *io_ok = true;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    BenchEntry entry;
    if (!extract_entry(line, entry)) {
      std::fprintf(stderr, "bench_compare: %s:%zu: unparseable line skipped\n",
                   path.c_str(), lineno);
      continue;
    }
    out[entry.bench] = std::move(entry);  // later lines win
  }
  return out;
}

// ---------------------------------------------------------------------------
// direction rules
// ---------------------------------------------------------------------------

enum class Direction { kNone, kLowerBetter, kHigherBetter };

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Direction direction_of(const std::string& path) {
  // Provenance subtrees never gate, whatever their names look like.
  if (path.rfind("manifest.", 0) == 0 || path.rfind("options.", 0) == 0 ||
      path.rfind("config.", 0) == 0) {
    return Direction::kNone;
  }
  const std::size_t dot = path.rfind('.');
  const std::string leaf = dot == std::string::npos ? path
                                                    : path.substr(dot + 1);
  if (ends_with(leaf, "_ns") || ends_with(leaf, "_ns_per_op") ||
      leaf.find("seconds") != std::string::npos) {
    return Direction::kLowerBetter;
  }
  if (leaf.find("accuracy") != std::string::npos ||
      ends_with(leaf, "per_sec") || leaf.find("speedup") != std::string::npos ||
      leaf.find("rate") != std::string::npos) {
    return Direction::kHigherBetter;
  }
  return Direction::kNone;
}

// ---------------------------------------------------------------------------
// the gate
// ---------------------------------------------------------------------------

struct Regression {
  std::string bench;
  std::string metric;
  double baseline;
  double current;
  double change;  ///< signed relative change, positive = worse
};

/// Compare latest history entries against the baseline.  Returns the number
/// of baseline benches found in the history; regressions accumulate.
int compare(const std::map<std::string, BenchEntry>& baseline,
            const std::map<std::string, BenchEntry>& history,
            double tolerance, std::vector<Regression>& regressions,
            bool verbose) {
  int found = 0;
  for (const auto& [bench, base] : baseline) {
    const auto cur_it = history.find(bench);
    if (cur_it == history.end()) {
      std::fprintf(stderr,
                   "bench_compare: bench '%s' pinned in baseline but absent "
                   "from history (not run?) — skipped\n",
                   bench.c_str());
      continue;
    }
    ++found;
    for (const auto& [metric, base_v] : base.metrics) {
      const Direction dir = direction_of(metric);
      if (dir == Direction::kNone) continue;
      const auto cur_v_it = cur_it->second.metrics.find(metric);
      if (cur_v_it == cur_it->second.metrics.end()) continue;
      const double cur_v = cur_v_it->second;
      if (!std::isfinite(base_v) || !std::isfinite(cur_v) || base_v == 0.0) {
        continue;
      }
      // Signed relative change where positive means "worse".
      const double rel = (cur_v - base_v) / std::fabs(base_v);
      const double worse = dir == Direction::kLowerBetter ? rel : -rel;
      if (verbose) {
        std::printf("  %-18s %-40s base %12.6g  cur %12.6g  %+7.2f%%%s\n",
                    bench.c_str(), metric.c_str(), base_v, cur_v, rel * 100.0,
                    worse > tolerance ? "  << REGRESSION" : "");
      }
      if (worse > tolerance) {
        regressions.push_back({bench, metric, base_v, cur_v, worse});
      }
    }
  }
  return found;
}

int run_check(const std::string& history_path, const std::string& baseline_path,
              double tolerance, const std::string& report_path, bool verbose) {
  bool ok = true;
  const auto baseline = load_latest(baseline_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_compare: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_compare: baseline %s has no entries\n",
                 baseline_path.c_str());
    return 2;
  }
  const auto history = load_latest(history_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_compare: cannot read history %s\n",
                 history_path.c_str());
    return 2;
  }

  std::vector<Regression> regressions;
  const int found = compare(baseline, history, tolerance, regressions,
                            verbose);

  if (!report_path.empty()) {
    std::vector<std::string> rows;
    for (const Regression& r : regressions) {
      mldist::util::JsonBuilder j;
      j.field("bench", r.bench)
          .field("metric", r.metric)
          .field("baseline", r.baseline)
          .field("current", r.current)
          .field("relative_regression", r.change);
      rows.push_back(j.str());
    }
    mldist::util::JsonBuilder doc;
    doc.field("tolerance", tolerance)
        .field("benches_compared", found)
        .field("regressions",
               static_cast<std::uint64_t>(regressions.size()))
        .raw("details", mldist::util::JsonBuilder::array(rows));
    const auto written = mldist::util::write_json_file(report_path, doc.str());
    if (!written) std::fprintf(stderr, "%s\n", written.error.c_str());
  }

  if (!regressions.empty()) {
    for (const Regression& r : regressions) {
      std::fprintf(stderr,
                   "REGRESSION %s %s: baseline %.6g -> current %.6g "
                   "(%.1f%% worse, tolerance %.1f%%)\n",
                   r.bench.c_str(), r.metric.c_str(), r.baseline, r.current,
                   r.change * 100.0, tolerance * 100.0);
    }
    return 1;
  }
  std::printf("bench_compare: %d bench(es) within %.1f%% of baseline\n",
              found, tolerance * 100.0);
  return 0;
}

int run_append(const std::string& bench_json, const std::string& name,
               const std::string& history_path) {
  std::ifstream in(bench_json);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 bench_json.c_str());
    return 2;
  }
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  while (!payload.empty() &&
         (payload.back() == '\n' || payload.back() == '\r')) {
    payload.pop_back();
  }
  std::string error;
  if (!mldist::util::json_validate(payload, &error)) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON: %s\n",
                 bench_json.c_str(), error.c_str());
    return 2;
  }
  if (payload.size() < 2 || payload.front() != '{') {
    std::fprintf(stderr, "bench_compare: %s is not a JSON object\n",
                 bench_json.c_str());
    return 2;
  }
  // Splice {"bench":"name", ...payload fields...}.
  const std::string line =
      "{\"bench\":" + mldist::util::JsonBuilder::quote(name) +
      (payload == "{}" ? "" : ",") + payload.substr(1);
  const auto appended = mldist::util::append_jsonl(history_path, line);
  if (!appended) {
    std::fprintf(stderr, "%s\n", appended.error.c_str());
    return 2;
  }
  std::printf("appended %s as bench '%s' to %s\n", bench_json.c_str(),
              name.c_str(), history_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// self-check: the gate must catch a 10% injected regression and pass on an
// identical copy of the history.
// ---------------------------------------------------------------------------

int run_self_check() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mldist_bench_compare_selfcheck";
  fs::create_directories(dir);
  const std::string baseline_path = (dir / "baseline.jsonl").string();
  const std::string identical_path = (dir / "identical.jsonl").string();
  const std::string regressed_path = (dir / "regressed.jsonl").string();

  const char* baseline_line =
      "{\"bench\":\"synthetic\",\"manifest\":{\"run_id\":\"selfcheck\"},"
      "\"fit_seconds\":10.0,\"val_accuracy\":0.82,\"rows_per_sec\":1000.0,"
      "\"seed\":42}";
  // 10% worse on every gated axis; the ungated seed also "changes" to prove
  // provenance fields never trip the gate.
  const char* regressed_line =
      "{\"bench\":\"synthetic\",\"manifest\":{\"run_id\":\"selfcheck2\"},"
      "\"fit_seconds\":11.0,\"val_accuracy\":0.738,\"rows_per_sec\":900.0,"
      "\"seed\":1042}";

  {
    std::ofstream(baseline_path) << baseline_line << "\n";
    std::ofstream(identical_path) << baseline_line << "\n";
    std::ofstream(regressed_path) << regressed_line << "\n";
  }

  std::printf("self-check 1/2: identical history must pass\n");
  const int ok_rc = run_check(identical_path, baseline_path,
                              /*tolerance=*/0.05, "", /*verbose=*/true);
  std::printf("self-check 2/2: 10%% injected regression must fail\n");
  const int bad_rc = run_check(regressed_path, baseline_path,
                               /*tolerance=*/0.05, "", /*verbose=*/true);
  fs::remove_all(dir);

  if (ok_rc != 0) {
    std::fprintf(stderr,
                 "self-check FAILED: identical history exited %d, want 0\n",
                 ok_rc);
    return 1;
  }
  if (bad_rc == 0) {
    std::fprintf(stderr,
                 "self-check FAILED: injected regression exited 0, want "
                 "nonzero\n");
    return 1;
  }
  std::printf("self-check passed: gate admits identical history and rejects "
              "the injected regression\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bench_compare check --history FILE --baseline FILE\n"
      "                [--tolerance REL] [--report FILE] [--verbose]\n"
      "  bench_compare append --bench-json FILE --name BENCH "
      "[--history FILE]\n"
      "  bench_compare self-check\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];

  std::string history = "results/history.jsonl";
  std::string baseline;
  std::string bench_json;
  std::string name;
  std::string report;
  double tolerance = 0.05;
  bool verbose = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--verbose") {
      verbose = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const char* v = argv[++i];
    if (flag == "--history") history = v;
    else if (flag == "--baseline") baseline = v;
    else if (flag == "--bench-json") bench_json = v;
    else if (flag == "--name") name = v;
    else if (flag == "--report") report = v;
    else if (flag == "--tolerance") tolerance = std::atof(v);
    else return usage();
  }

  if (mode == "check") {
    if (baseline.empty()) return usage();
    return run_check(history, baseline, tolerance, report, verbose);
  }
  if (mode == "append") {
    if (bench_json.empty() || name.empty()) return usage();
    return run_append(bench_json, name, history);
  }
  if (mode == "self-check") return run_self_check();
  return usage();
}
