// trace_merge: stitch per-worker Chrome trace files into one timeline.
//
//   trace_merge --out merged.json worker-1.trace.json worker-2.trace.json
//   trace_merge --out merged.json --dir state/obs
//
// Each input becomes one pid lane (numbered in argument order; --dir lists
// worker-*.trace.json sorted by name), aligned on the shared steady-clock
// epoch each file records in otherData.trace_epoch_ns.  Load the output at
// https://ui.perfetto.dev or chrome://tracing.  The same pass runs
// automatically at the end of a traced sharded campaign; this binary exists
// to re-merge after the fact (for example when a chaos-killed worker's lane
// was collected later).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace_merge.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out <merged.json> (<trace.json>... | --dir <d>)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      for (std::string& f : mldist::obs::list_trace_files(argv[++i])) {
        inputs.push_back(std::move(f));
      }
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (out.empty() || inputs.empty()) return usage(argv[0]);

  mldist::obs::TraceMergeResult result;
  std::string error;
  if (!mldist::obs::merge_trace_files(inputs, out, &result, &error)) {
    std::fprintf(stderr, "trace_merge: %s\n", error.c_str());
    return 1;
  }
  std::printf("trace_merge: %zu lanes, %zu events, %llu dropped -> %s\n",
              result.lanes, result.events,
              static_cast<unsigned long long>(result.dropped), out.c_str());
  return 0;
}
